/**
 * @file
 * Unit tests for the common substrate: RNG, histogram, configuration,
 * string utilities, statistics and logging.
 */

#include <gtest/gtest.h>

#include "common/config.hh"
#include "common/histogram.hh"
#include "common/logging.hh"
#include "common/rng.hh"
#include "common/stats.hh"
#include "common/strutil.hh"

namespace inpg {
namespace {

// ---------------------------------------------------------------------
// Rng
// ---------------------------------------------------------------------

TEST(Rng, DeterministicForSeed)
{
    Rng a(123);
    Rng b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1);
    Rng b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += a.next() == b.next() ? 1 : 0;
    EXPECT_LT(same, 4);
}

TEST(Rng, ZeroSeedIsValid)
{
    Rng r(0);
    std::uint64_t x = r.next();
    EXPECT_NE(x | r.next() | r.next(), 0u);
}

TEST(Rng, BoundedStaysInRange)
{
    Rng r(7);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(r.nextBounded(13), 13u);
}

TEST(Rng, BoundedCoversRange)
{
    Rng r(9);
    bool seen[8] = {};
    for (int i = 0; i < 500; ++i)
        seen[r.nextBounded(8)] = true;
    for (bool s : seen)
        EXPECT_TRUE(s);
}

TEST(Rng, RangeInclusive)
{
    Rng r(5);
    bool lo = false;
    bool hi = false;
    for (int i = 0; i < 500; ++i) {
        auto v = r.range(3, 6);
        EXPECT_GE(v, 3);
        EXPECT_LE(v, 6);
        lo |= v == 3;
        hi |= v == 6;
    }
    EXPECT_TRUE(lo);
    EXPECT_TRUE(hi);
}

TEST(Rng, DoubleInUnitInterval)
{
    Rng r(11);
    for (int i = 0; i < 1000; ++i) {
        double d = r.nextDouble();
        EXPECT_GE(d, 0.0);
        EXPECT_LT(d, 1.0);
    }
}

TEST(Rng, GeometricMeanApproximatelyHonored)
{
    Rng r(13);
    double sum = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        sum += static_cast<double>(r.nextGeometric(100.0));
    double mean = sum / n;
    EXPECT_NEAR(mean, 100.0, 5.0);
}

TEST(Rng, GeometricMinimumIsOne)
{
    Rng r(17);
    for (int i = 0; i < 1000; ++i)
        EXPECT_GE(r.nextGeometric(1.5), 1u);
    EXPECT_EQ(r.nextGeometric(1.0), 1u);
}

// ---------------------------------------------------------------------
// Histogram
// ---------------------------------------------------------------------

TEST(Histogram, BinsAndOverflow)
{
    Histogram h(10, 4); // bins [0-9] [10-19] [20-29] [30-39], overflow
    h.add(0);
    h.add(9);
    h.add(10);
    h.add(39);
    h.add(40);
    h.add(1000);
    EXPECT_EQ(h.binCount(0), 2u);
    EXPECT_EQ(h.binCount(1), 1u);
    EXPECT_EQ(h.binCount(2), 0u);
    EXPECT_EQ(h.binCount(3), 1u);
    EXPECT_EQ(h.overflowCount(), 2u);
    EXPECT_EQ(h.count(), 6u);
    EXPECT_EQ(h.max(), 1000u);
    EXPECT_EQ(h.min(), 0u);
}

TEST(Histogram, MeanAndReset)
{
    Histogram h(5, 10);
    h.add(10);
    h.add(20);
    EXPECT_DOUBLE_EQ(h.mean(), 15.0);
    h.reset();
    EXPECT_EQ(h.count(), 0u);
    EXPECT_DOUBLE_EQ(h.mean(), 0.0);
}

TEST(Histogram, PercentileAtBinGranularity)
{
    Histogram h(10, 10);
    for (int i = 0; i < 90; ++i)
        h.add(5); // bin 0
    for (int i = 0; i < 10; ++i)
        h.add(95); // bin 9
    EXPECT_EQ(h.percentile(0.5), 9u);   // upper edge of bin 0
    EXPECT_EQ(h.percentile(0.99), 99u); // upper edge of bin 9
}

TEST(Histogram, RenderListsNonEmptyBins)
{
    Histogram h(10, 4);
    h.add(5);
    h.add(100);
    std::string out = h.render();
    EXPECT_NE(out.find("[0-9]"), std::string::npos);
    EXPECT_NE(out.find(">"), std::string::npos);
    EXPECT_EQ(out.find("[10-19]"), std::string::npos);
}

// ---------------------------------------------------------------------
// Config
// ---------------------------------------------------------------------

TEST(Config, ParseStringWithCommentsAndOverrides)
{
    Config c;
    c.loadString("a = 1\n# comment\nb = hello # trailing\n a = 2 \n");
    EXPECT_EQ(c.getInt("a", 0), 2);
    EXPECT_EQ(c.getString("b"), "hello");
    EXPECT_FALSE(c.has("comment"));
}

TEST(Config, TypedGettersAndFallbacks)
{
    Config c;
    c.loadString("i = 42\nd = 2.5\nt = true\nf = off\n");
    EXPECT_EQ(c.getInt("i", -1), 42);
    EXPECT_DOUBLE_EQ(c.getDouble("d", 0), 2.5);
    EXPECT_TRUE(c.getBool("t", false));
    EXPECT_FALSE(c.getBool("f", true));
    EXPECT_EQ(c.getInt("missing", 7), 7);
}

TEST(Config, ArgsParsing)
{
    const char *argv[] = {"prog", "x=3", "verb", "y=z"};
    Config c;
    c.loadArgs(4, argv);
    EXPECT_EQ(c.getInt("x", 0), 3);
    EXPECT_EQ(c.getString("y"), "z");
    EXPECT_FALSE(c.has("verb"));
}

TEST(Config, ArgsDashedForms)
{
    // '=' form and space form must behave identically, bare switches
    // become "1", and dashes map to underscores.
    const char *argv[] = {"prog",        "--trace-out=run.json",
                          "--mesh-width", "4",
                          "--csv",        "--lock-home", "-1",
                          "x=3"};
    Config c;
    c.loadArgs(8, argv);
    EXPECT_EQ(c.getString("trace_out"), "run.json");
    EXPECT_EQ(c.getInt("mesh_width", 0), 4);
    EXPECT_TRUE(c.getBool("csv", false));
    EXPECT_EQ(c.getInt("lock_home", 0), -1);
    EXPECT_EQ(c.getInt("x", 0), 3);
}

TEST(Config, ArgsTrailingSwitchIsBoolean)
{
    const char *argv[] = {"prog", "--dump-stats"};
    Config c;
    c.loadArgs(2, argv);
    EXPECT_TRUE(c.getBool("dump_stats", false));
}

TEST(Config, ArgsStrictRejectsUnknownFlags)
{
    const std::vector<std::string> known = {"mesh_width", "csv"};
    {
        const char *argv[] = {"prog", "--mesh-width=4", "--csv"};
        Config c;
        c.loadArgs(3, argv, known); // all known: fine
        EXPECT_EQ(c.getInt("mesh_width", 0), 4);
    }
    {
        const char *argv[] = {"prog", "--mesh-widht=4"}; // typo
        Config c;
        EXPECT_THROW(c.loadArgs(2, argv, known), FatalError);
    }
    {
        const char *argv[] = {"prog", "stray"}; // positional
        Config c;
        EXPECT_THROW(c.loadArgs(2, argv, known), FatalError);
    }
}

TEST(Config, MalformedLineIsFatal)
{
    Config c;
    EXPECT_THROW(c.loadString("oops\n"), FatalError);
    EXPECT_THROW(c.loadFile("/nonexistent/path/cfg"), FatalError);
}

// ---------------------------------------------------------------------
// strutil
// ---------------------------------------------------------------------

TEST(StrUtil, TrimSplitLower)
{
    EXPECT_EQ(trim("  a b  "), "a b");
    EXPECT_EQ(trim(""), "");
    auto parts = split("a,b,,c", ',');
    ASSERT_EQ(parts.size(), 4u);
    EXPECT_EQ(parts[2], "");
    EXPECT_EQ(toLower("AbC"), "abc");
    EXPECT_TRUE(startsWith("freqmine", "freq"));
    EXPECT_FALSE(startsWith("f", "freq"));
}

TEST(StrUtil, Padding)
{
    EXPECT_EQ(padRight("ab", 4), "ab  ");
    EXPECT_EQ(padLeft("ab", 4), "  ab");
    EXPECT_EQ(padRight("abcdef", 3), "abc");
}

TEST(StrUtil, Parsers)
{
    EXPECT_EQ(parseInt("0x10"), 16);
    EXPECT_EQ(parseInt(" -5 "), -5);
    EXPECT_DOUBLE_EQ(parseDouble("1.5e2"), 150.0);
    EXPECT_TRUE(parseBool("Yes"));
    EXPECT_THROW(parseInt("12abc"), FatalError);
    EXPECT_THROW(parseDouble(""), FatalError);
    EXPECT_THROW(parseBool("maybe"), FatalError);
}

// ---------------------------------------------------------------------
// Stats
// ---------------------------------------------------------------------

TEST(Stats, CountersAndSamples)
{
    StatGroup g("grp");
    ++g.counter("hits");
    g.counter("hits") += 2;
    EXPECT_EQ(g.value("hits"), 3u);
    EXPECT_EQ(g.value("absent"), 0u);

    g.sample("lat").add(10);
    g.sample("lat").add(30);
    EXPECT_DOUBLE_EQ(g.sampleValue("lat").mean(), 20.0);
    EXPECT_DOUBLE_EQ(g.sampleValue("lat").min(), 10.0);
    EXPECT_DOUBLE_EQ(g.sampleValue("lat").max(), 30.0);
    EXPECT_EQ(g.sampleValue("nothing").count(), 0u);

    std::string dump = g.dump();
    EXPECT_NE(dump.find("grp.hits = 3"), std::string::npos);

    g.reset();
    EXPECT_EQ(g.value("hits"), 0u);
    EXPECT_EQ(g.sampleValue("lat").count(), 0u);
}

TEST(Logging, FatalThrowsPanicKillsNot)
{
    EXPECT_THROW(fatal("bad user input %d", 1), FatalError);
    try {
        fatal("code %d", 42);
    } catch (const FatalError &e) {
        EXPECT_NE(std::string(e.what()).find("42"), std::string::npos);
    }
}

} // namespace
} // namespace inpg
