/**
 * @file
 * Basic NoC bring-up tests: delivery, latency, conservation.
 */

#include <gtest/gtest.h>

#include <map>

#include "common/rng.hh"
#include "noc/network.hh"
#include "sim/simulator.hh"

namespace inpg {
namespace {

struct NocHarness {
    explicit NocHarness(int w, int h)
    {
        cfg.meshWidth = w;
        cfg.meshHeight = h;
        net = std::make_unique<Network>(cfg, sim);
        for (NodeId id = 0; id < net->numNodes(); ++id) {
            net->niFor(id).setDeliverCallback(
                id, [this, id](const PacketPtr &pkt, Cycle now) {
                    (void)now;
                    ++delivered[pkt->id];
                    lastDst[pkt->id] = id;
                });
        }
    }

    NocConfig cfg;
    Simulator sim;
    std::unique_ptr<Network> net;
    std::map<PacketId, int> delivered;
    std::map<PacketId, NodeId> lastDst;
};

TEST(NocBasic, SinglePacketDelivered)
{
    NocHarness h(4, 4);
    auto pkt = h.net->makePacket(0, 15, 0, 1);
    h.net->inject(pkt, h.sim.now());
    bool done = h.sim.runUntil(
        [&] { return h.delivered.count(pkt->id) > 0; }, 1000);
    ASSERT_TRUE(done);
    EXPECT_EQ(h.delivered[pkt->id], 1);
    EXPECT_EQ(h.lastDst[pkt->id], 15);
}

TEST(NocBasic, SelfDelivery)
{
    NocHarness h(2, 2);
    auto pkt = h.net->makePacket(3, 3, 1, 1);
    h.net->inject(pkt, h.sim.now());
    ASSERT_TRUE(h.sim.runUntil(
        [&] { return h.delivered.count(pkt->id) > 0; }, 200));
}

TEST(NocBasic, MultiFlitPacketDelivered)
{
    NocHarness h(4, 4);
    auto pkt = h.net->makePacket(0, 12, 2, 8);
    h.net->inject(pkt, h.sim.now());
    ASSERT_TRUE(h.sim.runUntil(
        [&] { return h.delivered.count(pkt->id) > 0; }, 1000));
    EXPECT_TRUE(h.net->quiescent());
}

TEST(NocBasic, ZeroLoadLatencyScalesWithHops)
{
    // On an empty 8x1 mesh, latency must grow linearly in hop count.
    NocHarness h(8, 1);
    Cycle lat[3];
    int idx = 0;
    for (NodeId dst : {1, 4, 7}) {
        NocHarness fresh(8, 1);
        auto pkt = fresh.net->makePacket(0, dst, 0, 1);
        Cycle start = fresh.sim.now();
        fresh.net->inject(pkt, start);
        ASSERT_TRUE(fresh.sim.runUntil(
            [&] { return fresh.delivered.count(pkt->id) > 0; }, 1000));
        lat[idx++] = fresh.sim.now() - start;
    }
    // 1 -> 4 is 3 extra hops; 4 -> 7 another 3: equal increments.
    EXPECT_EQ(lat[1] - lat[0], lat[2] - lat[1]);
    EXPECT_GT(lat[1], lat[0]);
}

TEST(NocBasic, AllPairsDelivered)
{
    NocHarness h(4, 4);
    std::map<PacketId, NodeId> expect;
    for (NodeId s = 0; s < 16; ++s) {
        for (NodeId d = 0; d < 16; ++d) {
            auto pkt = h.net->makePacket(s, d, 0, 1);
            expect[pkt->id] = d;
            h.net->inject(pkt, h.sim.now());
        }
    }
    ASSERT_TRUE(h.sim.runUntil(
        [&] { return h.delivered.size() == expect.size(); }, 20000));
    for (const auto &kv : expect) {
        EXPECT_EQ(h.delivered[kv.first], 1);
        EXPECT_EQ(h.lastDst[kv.first], kv.second);
    }
    h.sim.run(100);
    EXPECT_TRUE(h.net->quiescent());
}

TEST(NocBasic, RandomTrafficConservation)
{
    NocHarness h(4, 4);
    Rng rng(42);
    std::size_t total = 500;
    std::size_t sent = 0;
    // Inject randomly over time while the sim runs.
    while (sent < total || h.delivered.size() < total) {
        if (sent < total && rng.chance(0.7)) {
            NodeId s = static_cast<NodeId>(rng.nextBounded(16));
            NodeId d = static_cast<NodeId>(rng.nextBounded(16));
            VnetId v = static_cast<VnetId>(rng.nextBounded(4));
            int flits = rng.chance(0.3) ? 8 : 1;
            h.net->inject(h.net->makePacket(s, d, v, flits), h.sim.now());
            ++sent;
        }
        h.sim.step();
        ASSERT_LT(h.sim.now(), 200000u) << "traffic failed to drain";
    }
    EXPECT_EQ(h.delivered.size(), total);
    h.sim.run(200);
    EXPECT_TRUE(h.net->quiescent());
    // Every flit received by routers was eventually sent onward.
    EXPECT_EQ(h.net->niCounterTotal("packets_sent"), total);
    EXPECT_EQ(h.net->niCounterTotal("packets_delivered"), total);
}

} // namespace
} // namespace inpg
