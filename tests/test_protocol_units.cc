/**
 * @file
 * Focused protocol unit tests: directory state transitions, memory
 * controller queueing, delay lines, NI behaviour, and the L1's
 * forward-deferral machinery under adversarial orderings.
 */

#include <gtest/gtest.h>

#include "coh/coherent_system.hh"
#include "coh/memory_controller.hh"
#include "noc/link.hh"
#include "sim/simulator.hh"

namespace inpg {
namespace {

// ---------------------------------------------------------------------
// DelayLine / Channel
// ---------------------------------------------------------------------

TEST(DelayLine, HonorsLatencyAndOrder)
{
    DelayLine<int> line(3);
    line.push(1, 10);
    line.push(2, 10);
    EXPECT_FALSE(line.ready(12));
    EXPECT_TRUE(line.ready(13));
    EXPECT_EQ(line.pop(13), 1);
    EXPECT_EQ(line.pop(13), 2);
    EXPECT_TRUE(line.empty());
}

TEST(DelayLine, RejectsZeroLatency)
{
    EXPECT_DEATH({ DelayLine<int> line(0); }, "latency");
}

TEST(Channel, FlitDelayIncludesSwitchTraversal)
{
    // Channel flit delay = linkLatency + 1 (the sender's ST stage).
    Channel ch(1);
    EXPECT_EQ(ch.flits.linkLatency(), 2u);
    EXPECT_EQ(ch.credits.linkLatency(), 1u);
}

// ---------------------------------------------------------------------
// MemoryController
// ---------------------------------------------------------------------

TEST(MemoryController, SerializesAtServiceInterval)
{
    Simulator sim;
    MemoryController mc(0, sim, 50, 4);
    std::vector<Cycle> done;
    for (int i = 0; i < 3; ++i)
        mc.fetch(0x100, [&done, &sim] { done.push_back(sim.now()); });
    sim.run(100);
    ASSERT_EQ(done.size(), 3u);
    EXPECT_EQ(done[0], 50u);
    EXPECT_EQ(done[1], 54u); // +serviceInterval
    EXPECT_EQ(done[2], 58u);
    EXPECT_EQ(mc.stats.value("fetches"), 3u);
}

// ---------------------------------------------------------------------
// Directory behaviour
// ---------------------------------------------------------------------

struct DirHarness {
    DirHarness()
    {
        noc.meshWidth = 4;
        noc.meshHeight = 4;
        sys = std::make_unique<CoherentSystem>(noc, coh, sim);
    }

    void
    runUntil(const std::function<bool()> &f, Cycle max = 100000)
    {
        ASSERT_TRUE(sim.runUntil(f, max));
    }

    NocConfig noc;
    CohConfig coh;
    Simulator sim;
    std::unique_ptr<CoherentSystem> sys;
};

TEST(Directory, ColdMissPaysDramLatency)
{
    DirHarness h;
    Addr a = h.coh.lineHomedAt(5);
    Cycle start = h.sim.now();
    bool done = false;
    h.sys->l1(0).issueLoad(a, false, [&](std::uint64_t) { done = true; });
    h.runUntil([&] { return done; });
    Cycle cold = h.sim.now() - start;
    EXPECT_GE(cold, h.coh.memLatency);

    // A second, warm access to the same home is much faster.
    start = h.sim.now();
    done = false;
    h.sys->l1(1).issueLoad(a, false, [&](std::uint64_t) { done = true; });
    h.runUntil([&] { return done; });
    EXPECT_LT(h.sim.now() - start, cold);
    EXPECT_EQ(h.sys->directory(5).stats.value("cold_misses"), 1u);
}

TEST(Directory, TracksOwnerAndSharers)
{
    DirHarness h;
    Addr a = h.coh.lineHomedAt(2);
    int loads = 0;
    h.sys->l1(4).issueLoad(a, false, [&](std::uint64_t) { ++loads; });
    h.runUntil([&] { return loads == 1; });
    const auto *e = h.sys->directory(2).entry(a);
    ASSERT_NE(e, nullptr);
    EXPECT_EQ(e->owner, 4); // E grant

    h.sys->l1(9).issueLoad(a, false, [&](std::uint64_t) { ++loads; });
    h.runUntil([&] { return loads == 2; });
    EXPECT_EQ(e->owner, 4); // owner keeps the line (O)
    EXPECT_TRUE(e->sharers.count(9));

    bool stored = false;
    h.sys->l1(7).issueStore(a, 3, false,
                            [&](std::uint64_t) { stored = true; });
    h.runUntil([&] { return stored; });
    EXPECT_EQ(e->owner, 7);
    EXPECT_TRUE(e->sharers.empty());
}

TEST(Directory, InitValueOnlyBeforeFirstTouch)
{
    DirHarness h;
    Addr a = h.coh.lineHomedAt(1);
    h.sys->directory(1).initValue(a, 42);
    bool done = false;
    std::uint64_t got = 0;
    h.sys->l1(0).issueLoad(a, false, [&](std::uint64_t v) {
        got = v;
        done = true;
    });
    h.runUntil([&] { return done; });
    EXPECT_EQ(got, 42u);
    EXPECT_DEATH(h.sys->directory(1).initValue(a, 7), "already active");
}

TEST(Directory, RejectsMisroutedMessages)
{
    DirHarness h;
    auto msg = std::make_shared<CoherenceMsg>();
    msg->kind = CohMsgKind::GetS;
    msg->addr = h.coh.lineHomedAt(3);
    msg->toDirectory = true;
    EXPECT_DEATH(h.sys->directory(4).receiveMessage(msg, 0), "homed at");
}

// ---------------------------------------------------------------------
// Declarative-table findings (DESIGN.md Section 8)
// ---------------------------------------------------------------------

TEST(ProtocolTables, DirectorySelfGetSIsLoudlyIllegal)
{
    // Table-lift finding: the imperative directory would answer a GetS
    // from the recorded owner by forwarding the request back to the
    // requester itself -- a silent self-deadlock. The L1 can never
    // produce one (owner loads hit locally in E/M/O), so the table
    // declares (OwnedSelf, GetS) illegal; inject one by hand and
    // expect the precise panic instead of a hang.
    DirHarness h;
    Addr a = h.coh.lineHomedAt(3);
    bool stored = false;
    h.sys->l1(5).issueStore(a, 1, false,
                            [&](std::uint64_t) { stored = true; });
    h.runUntil([&] { return stored; });
    ASSERT_EQ(h.sys->directory(3).entry(a)->owner, 5);

    auto msg = std::make_shared<CoherenceMsg>();
    msg->kind = CohMsgKind::GetS;
    msg->addr = a;
    msg->requester = 5;
    msg->toDirectory = true;
    EXPECT_DEATH(
        {
            h.sys->directory(3).receiveMessage(msg, h.sim.now());
            h.sim.run(1000);
        },
        "illegal transition \\(OwnedSelf, GetS\\)");
}

TEST(ProtocolTables, DemotableAcquireOnFreeLockTakesExclusiveBranch)
{
    // (Uncached/Shared, GetXDemotable) maps to DemoteOrGrant: the home
    // only demotes while the lock value reads held; a free lock falls
    // through to the full exclusive grant so the acquire can write.
    DirHarness h;
    Addr a = h.coh.lineHomedAt(2);
    bool done = false;
    bool was_demoted = true;
    std::uint64_t old_val = 99;
    h.sys->l1(6).issueAtomic(
        a, AtomicOp::Swap, 1, 0, true,
        [&](std::uint64_t v, bool demoted) {
            old_val = v;
            was_demoted = demoted;
            done = true;
        },
        /*demotable=*/true);
    h.runUntil([&] { return done; });
    EXPECT_FALSE(was_demoted);
    EXPECT_EQ(old_val, 0u);
    EXPECT_EQ(h.sys->directory(2).entry(a)->owner, 6);
}

// ---------------------------------------------------------------------
// Adversarial interleavings through the L1 deferral machinery
// ---------------------------------------------------------------------

TEST(L1Deferral, OwnershipChainUnderReadersCompletes)
{
    // Writers hammer one line while readers interleave: exercises
    // deferred FwdGetS service at pre- and post-epoch positions.
    DirHarness h;
    Addr a = h.coh.lineHomedAt(6);
    int writes_left = 40;
    int reads_left = 40;
    int active = 8;
    std::function<void(CoreId)> worker = [&](CoreId c) {
        if (c % 2 == 0) {
            if (writes_left-- <= 0) {
                --active;
                return;
            }
            h.sys->l1(c).issueStore(a, static_cast<std::uint64_t>(c),
                                    false,
                                    [&worker, c](std::uint64_t) {
                                        worker(c);
                                    });
        } else {
            if (reads_left-- <= 0) {
                --active;
                return;
            }
            h.sys->l1(c).issueLoad(a, false, [&worker, c](std::uint64_t) {
                worker(c);
            });
        }
    };
    for (CoreId c = 0; c < 8; ++c)
        worker(c);
    h.runUntil([&] { return active == 0; }, 400000);
    EXPECT_EQ(h.sys->checkSwmr(a), "");
}

TEST(L1Deferral, BusyReports)
{
    DirHarness h;
    Addr a = h.coh.lineHomedAt(0);
    EXPECT_FALSE(h.sys->l1(3).busy());
    bool done = false;
    h.sys->l1(3).issueLoad(a, false, [&](std::uint64_t) { done = true; });
    EXPECT_TRUE(h.sys->l1(3).busy());
    h.runUntil([&] { return done; });
    EXPECT_FALSE(h.sys->l1(3).busy());
    EXPECT_NE(h.sys->l1(3).debugState().find("no-pending"),
              std::string::npos);
}

TEST(L1Deferral, OneOutstandingOpEnforced)
{
    DirHarness h;
    Addr a = h.coh.lineHomedAt(0);
    h.sys->l1(2).issueLoad(a, false, [](std::uint64_t) {});
    EXPECT_DEATH(h.sys->l1(2).issueLoad(a, false, [](std::uint64_t) {}),
                 "outstanding");
}

} // namespace
} // namespace inpg
