/**
 * @file
 * Topology-layer tests: spec parsing and the config surface (incl. the
 * deprecated mesh= shim and named presets), torus dateline routing
 * properties, channel-dependency acyclicity across fabrics with the
 * no-escape-VC torus as the negative control, big-router placement,
 * determinism fingerprints for torus and cmesh under both kernels, and
 * the 32x32 (1024-core) big-router-placement sweep end to end.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "coh/protocol_verify.hh"
#include "common/config.hh"
#include "harness/presets.hh"
#include "harness/sweep_runner.hh"
#include "harness/system.hh"
#include "noc/topology.hh"
#include "workload/benchmark_profile.hh"
#include "workload/workload.hh"

namespace inpg {
namespace {

// ---------------------------------------------------------------------
// TopologySpec parsing
// ---------------------------------------------------------------------

TEST(TopologySpec, ParsesAllThreeForms)
{
    TopologySpec mesh = TopologySpec::parse("mesh:16x16");
    EXPECT_EQ(mesh.kind, TopologyKind::Mesh);
    EXPECT_EQ(mesh.width, 16);
    EXPECT_EQ(mesh.height, 16);
    EXPECT_EQ(mesh.concentration, 1);

    TopologySpec torus = TopologySpec::parse("torus:8x8");
    EXPECT_EQ(torus.kind, TopologyKind::Torus);
    EXPECT_EQ(torus.width, 8);
    EXPECT_EQ(torus.height, 8);

    TopologySpec cmesh = TopologySpec::parse("cmesh:8x8x4");
    EXPECT_EQ(cmesh.kind, TopologyKind::CMesh);
    EXPECT_EQ(cmesh.width, 8);
    EXPECT_EQ(cmesh.height, 8);
    EXPECT_EQ(cmesh.concentration, 4);
}

TEST(TopologySpec, BareGeometryIsAMesh)
{
    TopologySpec spec = TopologySpec::parse("4x6");
    EXPECT_EQ(spec.kind, TopologyKind::Mesh);
    EXPECT_EQ(spec.width, 4);
    EXPECT_EQ(spec.height, 6);
    EXPECT_EQ(spec.canonical(), "mesh:4x6");
}

TEST(TopologySpec, StrictUnknownValueErrors)
{
    EXPECT_THROW(TopologySpec::parse("ring:4x4"), FatalError);
    EXPECT_THROW(TopologySpec::parse("mesh:0x4"), FatalError);
    EXPECT_THROW(TopologySpec::parse("mesh:4"), FatalError);
    EXPECT_THROW(TopologySpec::parse("mesh:4x4x2"), FatalError);
    EXPECT_THROW(TopologySpec::parse("cmesh:4x4"), FatalError);
    EXPECT_THROW(TopologySpec::parse("cmesh:4x4x0"), FatalError);
    EXPECT_THROW(TopologySpec::parse("torus:axb"), FatalError);
    EXPECT_THROW(TopologySpec::parse(""), FatalError);
}

TEST(TopologySpec, CanonicalRoundTrips)
{
    for (const char *s : {"mesh:8x8", "torus:8x8", "cmesh:8x8x4"}) {
        TopologySpec spec = TopologySpec::parse(s);
        EXPECT_EQ(spec.canonical(), s);
        TopologySpec again = TopologySpec::parse(spec.canonical());
        EXPECT_EQ(again.kind, spec.kind);
        EXPECT_EQ(again.width, spec.width);
        EXPECT_EQ(again.concentration, spec.concentration);
    }
}

// ---------------------------------------------------------------------
// Config surface (topology=, the mesh= shim, presets)
// ---------------------------------------------------------------------

Config
makeConfig(const std::vector<std::string> &args)
{
    std::vector<const char *> argv = {"test"};
    for (const auto &a : args)
        argv.push_back(a.c_str());
    Config cfg;
    cfg.loadArgs(static_cast<int>(argv.size()), argv.data());
    return cfg;
}

TEST(TopologyConfig, LoadArgsAllThreeForms)
{
    {
        SystemConfig sc;
        sc.applyOverrides(makeConfig({"topology=mesh:16x16"}));
        EXPECT_EQ(sc.noc.topology, TopologyKind::Mesh);
        EXPECT_EQ(sc.noc.meshWidth, 16);
        EXPECT_EQ(sc.numCores(), 256);
    }
    {
        SystemConfig sc;
        sc.applyOverrides(makeConfig({"topology=torus:8x8"}));
        EXPECT_EQ(sc.noc.topology, TopologyKind::Torus);
        EXPECT_EQ(sc.numCores(), 64);
        EXPECT_TRUE(sc.noc.escapeVcs);
    }
    {
        SystemConfig sc;
        sc.applyOverrides(makeConfig({"topology=cmesh:8x8x4"}));
        EXPECT_EQ(sc.noc.topology, TopologyKind::CMesh);
        EXPECT_EQ(sc.noc.concentration, 4);
        EXPECT_EQ(sc.numCores(), 256);
    }
}

TEST(TopologyConfig, DeprecatedMeshShimStillWorks)
{
    SystemConfig sc;
    sc.applyOverrides(makeConfig({"mesh=16x16"}));
    EXPECT_EQ(sc.noc.topology, TopologyKind::Mesh);
    EXPECT_EQ(sc.noc.meshWidth, 16);
    EXPECT_EQ(sc.noc.meshHeight, 16);
    EXPECT_EQ(sc.noc.concentration, 1);
}

TEST(TopologyConfig, UnknownTopologyIsFatal)
{
    SystemConfig sc;
    EXPECT_THROW(sc.applyOverrides(makeConfig({"topology=ring:4x4"})),
                 FatalError);
    EXPECT_THROW(sc.applyOverrides(makeConfig({"mesh=bogus"})),
                 FatalError);
}

TEST(TopologyConfig, PresetsExpand)
{
    ASSERT_NE(lookupTopologyPreset("32x32"), nullptr);
    EXPECT_EQ(lookupTopologyPreset("not-a-preset"), nullptr);
    SystemConfig sc;
    sc.applyOverrides(makeConfig({"topology=32x32"}));
    EXPECT_EQ(sc.numCores(), 1024);
    SystemConfig cm;
    cm.applyOverrides(makeConfig({"topology=1024c"}));
    EXPECT_EQ(cm.noc.topology, TopologyKind::CMesh);
    EXPECT_EQ(cm.numCores(), 1024);
    EXPECT_EQ(cm.noc.meshWidth, 16);
}

TEST(TopologyConfig, ConcentrationRequiresCmesh)
{
    SystemConfig sc;
    sc.noc.concentration = 4; // without topology=cmesh
    EXPECT_THROW(sc.finalize(), FatalError);
}

TEST(TopologyConfig, TorusEscapeVcsNeedEvenVcs)
{
    SystemConfig sc;
    sc.applyOverrides(makeConfig({"topology=torus:4x4"}));
    sc.noc.vcsPerVnet = 3;
    EXPECT_THROW(sc.finalize(), FatalError);
}

// ---------------------------------------------------------------------
// Topology object: geometry, links, placement
// ---------------------------------------------------------------------

NocConfig
nocFor(const char *spec_text)
{
    NocConfig cfg;
    TopologySpec::parse(spec_text).applyTo(cfg);
    return cfg;
}

TEST(TopologyObject, TorusNeighborsWrap)
{
    auto topo = makeTopology(nocFor("torus:4x4"));
    EXPECT_EQ(topo->neighbor(0, Direction::West), 3);
    EXPECT_EQ(topo->neighbor(0, Direction::North), 12);
    EXPECT_EQ(topo->neighbor(3, Direction::East), 0);
    EXPECT_EQ(topo->neighbor(15, Direction::South), 3);
    // Wrap halves the worst-case distance.
    EXPECT_EQ(topo->hopDistance(0, 15), 2);
    EXPECT_EQ(topo->hopDistance(0, 3), 1);
}

TEST(TopologyObject, TorusLinkEnumerationHasWrapEdges)
{
    auto topo = makeTopology(nocFor("torus:4x4"));
    int wraps = 0;
    for (const TopoLink &l : topo->links()) {
        if (l.wrap)
            ++wraps;
        EXPECT_EQ(topo->neighbor(l.from, l.dir), l.to);
    }
    // One wrap per row (East) plus one per column (South).
    EXPECT_EQ(wraps, 8);
    // 2 links per router in the canonical {East, South} enumeration.
    EXPECT_EQ(topo->links().size(), 32u);
}

TEST(TopologyObject, MeshLinksMatchLegacyChannelOrder)
{
    auto topo = makeTopology(nocFor("mesh:3x3"));
    // Ascending router id x {East, South}, no wraps, edge routers
    // simply skip absent directions -- the exact order the
    // pre-Topology mesh builder wired channels in.
    const auto links = topo->links();
    ASSERT_EQ(links.size(), 12u);
    EXPECT_EQ(links[0].from, 0);
    EXPECT_EQ(links[0].dir, Direction::East);
    EXPECT_EQ(links[1].from, 0);
    EXPECT_EQ(links[1].dir, Direction::South);
    for (const TopoLink &l : links)
        EXPECT_FALSE(l.wrap);
}

TEST(TopologyObject, CmeshNodeMapping)
{
    auto topo = makeTopology(nocFor("cmesh:4x4x4"));
    EXPECT_EQ(topo->numRouters(), 16);
    EXPECT_EQ(topo->numNodes(), 64);
    EXPECT_EQ(topo->routerOf(0), 0);
    EXPECT_EQ(topo->routerOf(3), 0);
    EXPECT_EQ(topo->routerOf(4), 1);
    EXPECT_EQ(topo->firstNodeOf(5), 20);
}

TEST(TopologyObject, SmallTorusIsRejected)
{
    EXPECT_THROW(makeTopology(nocFor("torus:2x2"))->makeRouting(),
                 FatalError);
}

TEST(TopologyObject, EvenPlacementCheckerboardAtHalf)
{
    // count = n/2: the paper Figure 3 checkerboard.
    int marked = 0;
    for (NodeId r = 0; r < 16; ++r) {
        const bool big = evenPlacementSite(r, 4, 4, 8);
        const int x = r % 4, y = r / 4;
        EXPECT_EQ(big, (x + y) % 2 == 1);
        marked += big;
    }
    EXPECT_EQ(marked, 8);
    // Bresenham stride hits the exact count for any count.
    for (int count : {1, 3, 5, 7, 11, 16}) {
        int n = 0;
        for (NodeId r = 0; r < 16; ++r)
            n += evenPlacementSite(r, 4, 4, count);
        EXPECT_EQ(n, count) << "count " << count;
    }
}

// ---------------------------------------------------------------------
// Torus routing: dateline discipline
// ---------------------------------------------------------------------

TEST(TorusRouting, EveryPairReachesInMinimalHops)
{
    NocConfig cfg = nocFor("torus:5x4");
    auto topo = makeTopology(cfg);
    auto routing = topo->makeRouting();
    for (NodeId s = 0; s < topo->numRouters(); ++s) {
        for (NodeId d = 0; d < topo->numRouters(); ++d) {
            NodeId here = s;
            int hops = 0;
            while (here != d) {
                const RouteEntry e = routing->routeEntry(here, d);
                ASSERT_NE(e.dir, Direction::Local);
                here = topo->neighbor(here, e.dir);
                ASSERT_NE(here, INVALID_NODE);
                ASSERT_LE(++hops, topo->hopDistance(s, d));
            }
            EXPECT_EQ(hops, topo->hopDistance(s, d));
            EXPECT_EQ(routing->routeEntry(d, d).dir, Direction::Local);
        }
    }
}

TEST(TorusRouting, DatelineClassesNeverChainBackward)
{
    // Along any route, the VC class per dimension may only go 0 -> 1
    // (crossing the dateline), never 1 -> 0: that monotonicity is the
    // acyclicity argument the verifier checks structurally.
    NocConfig cfg = nocFor("torus:5x5");
    auto topo = makeTopology(cfg);
    auto routing = topo->makeRouting();
    for (NodeId s = 0; s < topo->numRouters(); ++s) {
        for (NodeId d = 0; d < topo->numRouters(); ++d) {
            NodeId here = s;
            int last_class_x = -1, last_class_y = -1;
            while (here != d) {
                const RouteEntry e = routing->routeEntry(here, d);
                ASSERT_NE(e.vcClass, VC_CLASS_ANY);
                int &last = (e.dir == Direction::East ||
                             e.dir == Direction::West)
                                ? last_class_x
                                : last_class_y;
                ASSERT_GE(static_cast<int>(e.vcClass), last);
                last = e.vcClass;
                here = topo->neighbor(here, e.dir);
            }
        }
    }
}

TEST(TorusRouting, NoEscapeVcsLeavesClassAny)
{
    NocConfig cfg = nocFor("torus:4x4");
    cfg.escapeVcs = false;
    auto routing = makeTopology(cfg)->makeRouting();
    EXPECT_EQ(routing->routeEntry(0, 3).vcClass, VC_CLASS_ANY);
}

TEST(MeshRouting, RouteEntriesStayClassAny)
{
    // The port of the mesh onto Topology must be bit-identical: every
    // mesh route entry keeps the full vnet VC range (VC_CLASS_ANY).
    auto routing = makeTopology(nocFor("mesh:4x4"))->makeRouting();
    for (NodeId s = 0; s < 16; ++s)
        for (NodeId d = 0; d < 16; ++d)
            EXPECT_EQ(routing->routeEntry(s, d).vcClass, VC_CLASS_ANY);
}

// ---------------------------------------------------------------------
// Channel-dependency verifier
// ---------------------------------------------------------------------

TEST(ChannelDeps, MeshTorusCmeshAreAcyclic)
{
    for (const char *spec : {"mesh:8x8", "torus:8x8", "cmesh:4x4x4"}) {
        auto topo = makeTopology(nocFor(spec));
        EXPECT_TRUE(verifyChannelDeps(*topo).empty()) << spec;
    }
}

TEST(ChannelDeps, CmeshDependenciesMatchRouterGridMesh)
{
    // Check-5 witness for the concentrated mesh: concentration lives
    // entirely at the NIs, so the router-level channel-dependency
    // graph of cmesh:WxHxC must be exactly the plain mesh:WxH graph
    // -- same channels in the same canonical order, same edges. A
    // routing or link-enumeration change that made the concentrated
    // fabric diverge from the verified mesh structure fails here.
    auto cmesh = makeTopology(nocFor("cmesh:4x4x4"));
    auto mesh = makeTopology(nocFor("mesh:4x4"));
    const ChannelDepGraph cg = cmesh->channelDependencies();
    const ChannelDepGraph mg = mesh->channelDependencies();
    ASSERT_EQ(cg.nodes.size(), mg.nodes.size());
    for (std::size_t i = 0; i < cg.nodes.size(); ++i) {
        EXPECT_EQ(cg.nodes[i].from, mg.nodes[i].from) << i;
        EXPECT_EQ(cg.nodes[i].to, mg.nodes[i].to) << i;
        EXPECT_EQ(cg.nodes[i].dir, mg.nodes[i].dir) << i;
        EXPECT_EQ(cg.nodes[i].vcClass, mg.nodes[i].vcClass) << i;
    }
    ASSERT_EQ(cg.edges.size(), mg.edges.size());
    for (std::size_t i = 0; i < cg.edges.size(); ++i)
        EXPECT_EQ(cg.edges[i], mg.edges[i]) << "adjacency of channel "
                                            << cg.describe(i);
    // Every channel is an inter-ROUTER link: concentration must not
    // leak core ids (>= numRouters) into the dependency graph.
    for (const ChannelDepGraph::Node &n : cg.nodes) {
        EXPECT_LT(n.from, cmesh->numRouters());
        EXPECT_LT(n.to, cmesh->numRouters());
    }
}

TEST(ChannelDeps, CmeshXyRoutingNeverTurnsBackToRowTraffic)
{
    // The XY argument for deadlock freedom, checked structurally on
    // the concentrated fabric: a column (N/S) channel may never
    // depend on a row (E/W) channel. Non-square shape on purpose.
    auto topo = makeTopology(nocFor("cmesh:8x2x2"));
    EXPECT_TRUE(verifyChannelDeps(*topo).empty());
    const ChannelDepGraph g = topo->channelDependencies();
    ASSERT_FALSE(g.nodes.empty());
    auto vertical = [](Direction d) {
        return d == Direction::North || d == Direction::South;
    };
    for (std::size_t i = 0; i < g.nodes.size(); ++i) {
        if (!vertical(g.nodes[i].dir))
            continue;
        for (std::int32_t succ : g.edges[i])
            EXPECT_TRUE(
                vertical(g.nodes[static_cast<std::size_t>(succ)].dir))
                << g.describe(i) << " depends on "
                << g.describe(static_cast<std::size_t>(succ));
    }
}

TEST(ChannelDeps, TorusWithoutEscapeVcsHasCycleWitness)
{
    NocConfig cfg = nocFor("torus:4x4");
    cfg.escapeVcs = false;
    auto topo = makeTopology(cfg);
    const ChannelDepGraph g = topo->channelDependencies();
    const auto cycle = findChannelDepCycle(g);
    ASSERT_FALSE(cycle.empty());
    // The witness is a closed channel path.
    EXPECT_EQ(cycle.front(), cycle.back());
    ASSERT_GE(cycle.size(), 2u);
    for (std::size_t i = 0; i + 1 < cycle.size(); ++i) {
        const auto &out = g.edges[static_cast<std::size_t>(cycle[i])];
        EXPECT_NE(std::find(out.begin(), out.end(), cycle[i + 1]),
                  out.end())
            << "witness step " << i << " is not a graph edge";
    }
    // And the verifier turns it into a diagnostic naming the cycle.
    const auto diags = verifyChannelDeps(*topo);
    ASSERT_EQ(diags.size(), 1u);
    EXPECT_NE(diags[0].message.find("channel dependency cycle"),
              std::string::npos);
    EXPECT_EQ(diags[0].check, "channel-deps");
}

TEST(ChannelDeps, SystemConstructionRejectsNoEscapeTorus)
{
    SystemConfig sc;
    sc.applyOverrides(makeConfig({"topology=torus:4x4",
                                  "escape_vcs=0"}));
    try {
        System system(sc);
        FAIL() << "no-escape-VC torus must be rejected";
    } catch (const FatalError &e) {
        EXPECT_NE(std::string(e.what()).find("channel dependency cycle"),
                  std::string::npos);
    }
    // The dateline configuration builds fine.
    SystemConfig ok;
    ok.applyOverrides(makeConfig({"topology=torus:4x4"}));
    EXPECT_NO_THROW(System system(ok));
}

// ---------------------------------------------------------------------
// Determinism fingerprints on the new fabrics
// ---------------------------------------------------------------------

struct Fingerprint {
    Cycle simCycles = 0;
    Cycle roiCycles = 0;
    std::uint64_t csCompleted = 0;
    std::uint64_t earlyInvs = 0;
    std::uint64_t flitsSent = 0;

    bool
    operator==(const Fingerprint &o) const
    {
        return simCycles == o.simCycles && roiCycles == o.roiCycles &&
               csCompleted == o.csCompleted &&
               earlyInvs == o.earlyInvs && flitsSent == o.flitsSent;
    }
};

Fingerprint
runFabric(const char *topology, int threads)
{
    SystemConfig cfg;
    cfg.applyOverrides(makeConfig({std::string("topology=") + topology}));
    cfg.mechanism = Mechanism::Inpg;
    cfg.inpg.numBigRouters = cfg.noc.numRouters() / 2;
    cfg.threads = threads;
    cfg.finalize();

    System system(cfg);
    Workload::Params wp;
    wp.profile = benchmarkByName("ferret");
    wp.threads = cfg.numCores();
    wp.csScale = 0.1;
    wp.lockKind = cfg.lockKind;
    wp.seed = cfg.seed;
    Workload workload(wp, system.coherent(), system.locks(),
                      system.sim());
    workload.start();
    system.runUntil([&] { return workload.done(); });

    Fingerprint f;
    f.simCycles = system.sim().now();
    f.roiCycles = workload.roiFinish();
    f.csCompleted = workload.csCompleted();
    f.earlyInvs = system.totalEarlyInvs();
    for (NodeId n = 0; n < system.coherent().network().numRouters();
         ++n)
        f.flitsSent += system.coherent().network().router(n)
                           .stats.value("flits_sent");
    return f;
}

TEST(FabricDeterminism, TorusReproducesAndMatchesParallel)
{
    Fingerprint serial = runFabric("torus:4x4", 1);
    EXPECT_GT(serial.csCompleted, 0u);
    EXPECT_GT(serial.flitsSent, 0u);
    EXPECT_TRUE(serial == runFabric("torus:4x4", 1))
        << "serial torus run is not reproducible";
    for (int t : {2, 4}) {
        EXPECT_TRUE(serial == runFabric("torus:4x4", t))
            << "torus threads=" << t
            << " diverges from the serial kernel";
    }
}

TEST(FabricDeterminism, CmeshReproducesAndMatchesParallel)
{
    Fingerprint serial = runFabric("cmesh:4x4x4", 1);
    EXPECT_GT(serial.csCompleted, 0u);
    EXPECT_GT(serial.flitsSent, 0u);
    EXPECT_TRUE(serial == runFabric("cmesh:4x4x4", 1))
        << "serial cmesh run is not reproducible";
    for (int t : {2, 4}) {
        EXPECT_TRUE(serial == runFabric("cmesh:4x4x4", t))
            << "cmesh threads=" << t
            << " diverges from the serial kernel";
    }
}

// ---------------------------------------------------------------------
// 32x32 placement sweep end to end
// ---------------------------------------------------------------------

TEST(PlacementSweep, GridCoversFabricsByCounts)
{
    RunConfig base;
    const auto grid = buildPlacementSweep(
        base, {"torus:8x8", "cmesh:4x4x4"}, {0, 8, 32});
    ASSERT_EQ(grid.size(), 6u);
    EXPECT_EQ(grid[0].system.noc.topology, TopologyKind::Torus);
    EXPECT_EQ(grid[0].system.inpg.numBigRouters, 0);
    EXPECT_EQ(grid[2].system.inpg.numBigRouters, 32);
    EXPECT_EQ(grid[3].system.noc.topology, TopologyKind::CMesh);
    EXPECT_EQ(grid[3].system.noc.concentration, 4);
    // Preset names resolve too.
    const auto preset = buildPlacementSweep(base, {"32x32"}, {16});
    ASSERT_EQ(preset.size(), 1u);
    EXPECT_EQ(preset[0].system.noc.meshWidth, 32);
}

TEST(PlacementSweep, Runs32x32EndToEnd)
{
    // The acceptance bar: a 1024-core preset completes a big-router
    // placement sweep through the sweep runner. Two placement points
    // keep the test inside a CI budget; csScale trims the CS count.
    RunConfig base;
    base.profile = benchmarkByName("freq");
    base.system.mechanism = Mechanism::Inpg;
    base.csScale = 0.001;
    const auto grid = buildPlacementSweep(base, {"32x32"}, {16, 512});
    ASSERT_EQ(grid.size(), 2u);
    const auto results = runSweep(grid);
    ASSERT_EQ(results.size(), 2u);
    for (const RunResult &r : results) {
        EXPECT_GT(r.roiCycles, 0u);
        EXPECT_GT(r.csCompleted, 0u);
    }
    // 512 big routers on a 32x32 grid is the checkerboard; iNPG must
    // actually have fired there.
    EXPECT_GT(results[1].earlyInvs, 0u);
}

} // namespace
} // namespace inpg
