/**
 * @file
 * Trace facility tests: channel gating, sinks, and that protocol
 * components actually emit on their channels.
 */

#include <gtest/gtest.h>

#include <cctype>
#include <vector>

#include "coh/coherent_system.hh"
#include "common/trace.hh"
#include "harness/sweep_runner.hh"
#include "sim/simulator.hh"
#include "workload/benchmark_profile.hh"

namespace inpg {
namespace {

struct TraceCapture {
    TraceCapture()
    {
        previous = Trace::setSink(
            [this](const std::string &line) { lines.push_back(line); });
    }

    ~TraceCapture()
    {
        Trace::setSink(previous);
        Trace::disable("all");
    }

    std::vector<std::string> lines;
    Trace::Sink previous;
};

TEST(Trace, ChannelGating)
{
    TraceCapture cap;
    EXPECT_FALSE(Trace::enabled("l1"));
    Trace::enable("l1");
    EXPECT_TRUE(Trace::enabled("l1"));
    EXPECT_TRUE(Trace::enabled("L1")); // case-insensitive
    EXPECT_FALSE(Trace::enabled("dir"));
    Trace::disable("l1");
    EXPECT_FALSE(Trace::enabled("l1"));
    Trace::enable("all");
    EXPECT_TRUE(Trace::enabled("anything"));
    Trace::disable("all");
    EXPECT_FALSE(Trace::enabled("anything"));
}

TEST(Trace, EmitFormatsCycleAndChannel)
{
    TraceCapture cap;
    Trace::enable("x");
    INPG_TRACE_LINE("x", 42, "value=%d", 7);
    ASSERT_EQ(cap.lines.size(), 1u);
    EXPECT_EQ(cap.lines[0], "[42] x: value=7");
    // Disabled channel: the macro must not emit (nor format).
    INPG_TRACE_LINE("y", 43, "%d", 1);
    EXPECT_EQ(cap.lines.size(), 1u);
}

TEST(Trace, ProtocolComponentsEmitOnTheirChannels)
{
    TraceCapture cap;
    Trace::enable("l1");
    Trace::enable("dir");

    NocConfig noc;
    noc.meshWidth = 2;
    noc.meshHeight = 2;
    CohConfig coh;
    Simulator sim;
    CoherentSystem sys(noc, coh, sim);
    bool done = false;
    sys.l1(0).issueLoad(coh.lineHomedAt(3), false,
                        [&](std::uint64_t) { done = true; });
    ASSERT_TRUE(sim.runUntil([&] { return done; }, 10000));

    bool saw_l1 = false;
    bool saw_dir = false;
    for (const auto &line : cap.lines) {
        saw_l1 |= line.find("l1:") != std::string::npos;
        saw_dir |= line.find("dir:") != std::string::npos;
    }
    EXPECT_TRUE(saw_l1);
    EXPECT_TRUE(saw_dir);
}

TEST(Trace, ParallelSweepDoesNotTearLines)
{
    TraceCapture cap;
    Trace::enable("l1");

    // Four concurrent workers, all tracing into the same sink.
    std::vector<RunConfig> configs;
    for (int i = 0; i < 4; ++i) {
        RunConfig rc;
        rc.profile = benchmarkByName("freq");
        rc.system.noc.meshWidth = 2;
        rc.system.noc.meshHeight = 2;
        rc.system.seed = static_cast<std::uint64_t>(i + 1);
        rc.csScale = 0.002;
        configs.push_back(rc);
    }
    SweepOptions opts;
    opts.threads = 4;
    runSweep(configs, opts);

    ASSERT_FALSE(cap.lines.empty());
    for (const auto &line : cap.lines) {
        // Every delivered line is exactly one well-formed record:
        // "[<cycle>] l1: <msg>" with no embedded newline and no second
        // header (which is what an interleaved/torn write would show).
        ASSERT_GT(line.size(), 2u) << line;
        EXPECT_EQ(line.find('\n'), std::string::npos) << line;
        ASSERT_EQ(line[0], '[') << line;
        const std::size_t close = line.find(']');
        ASSERT_NE(close, std::string::npos) << line;
        for (std::size_t i = 1; i < close; ++i)
            ASSERT_TRUE(std::isdigit(static_cast<unsigned char>(
                line[i])))
                << line;
        ASSERT_EQ(line.compare(close, 6, "] l1: "), 0) << line;
        EXPECT_EQ(line.find("] l1: ", close + 1), std::string::npos)
            << line;
    }
}

} // namespace
} // namespace inpg
