/**
 * @file
 * Experiment-ledger tests: the JSON reader's round-trip guarantee
 * (parse(dump(x)).dump() == dump(x), signedness and escape handling),
 * the RunRecord canonical serialization contract, schema-version
 * refusal, configKey pairing semantics, torn-line-free concurrent
 * ledger appends, and the determinism of the diff / aggregate /
 * regress reports built on top.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "telemetry/json.hh"
#include "telemetry/report.hh"
#include "telemetry/run_record.hh"

namespace inpg {
namespace {

/** A fully populated record; knobs cover the pairing identity. */
RunRecord
makeRecord(const std::string &mech, const std::string &lock,
           std::uint64_t seed, std::uint64_t roi_cycles)
{
    RunRecord rec;
    rec.gitSha = "abc1234";
    rec.gitDirty = true;
    rec.compiler = "test-compiler 1.0";
    rec.benchmark = "freq";
    rec.mechanism = mech;
    rec.lock = lock;
    rec.topology = "mesh:4x4";
    rec.impl = "fast";
    rec.cores = 16;
    rec.bigRouters = 1;
    rec.threads = 1;
    rec.seed = seed;
    rec.csScale = 0.05;
    rec.roiCycles = roi_cycles;
    rec.csCompleted = 320;
    rec.parallelCycles = roi_cycles / 2;
    rec.cohCycles = roi_cycles / 8;
    rec.sleepCycles = 17;
    rec.cseCycles = 23;
    rec.lockCohCycles = roi_cycles / 16;
    rec.rttMean = 41.25;
    rec.rttMax = 96;
    rec.rttCount = 320;
    rec.earlyInvs = 7;
    rec.sleeps = 3;
    rec.wakeups = 3;
    return rec;
}

TEST(JsonReader, RoundTripPreservesEmittedForms)
{
    JsonValue doc = JsonValue::object();
    doc["escapes"] = "quote \" backslash \\ newline \n tab \t ctl \x01";
    doc["uint_max"] = static_cast<std::uint64_t>(18446744073709551615ull);
    doc["negative"] = -42;
    doc["zero"] = static_cast<std::uint64_t>(0);
    doc["fraction"] = 0.25;
    doc["tiny"] = 1e-3;
    doc["truth"] = true;
    doc["nothing"] = JsonValue();
    JsonValue arr = JsonValue::array();
    arr.push(JsonValue(1));
    arr.push(JsonValue("two"));
    JsonValue inner = JsonValue::object();
    inner["k"] = 3.5;
    arr.push(std::move(inner));
    doc["mixed"] = std::move(arr);

    for (int indent : {0, 2}) {
        const std::string text = doc.dump(indent);
        std::string err;
        JsonValue back = JsonValue::parse(text, &err);
        EXPECT_TRUE(err.empty()) << err;
        // Byte-identical re-serialization: unsigned stays unsigned,
        // doubles re-print identically, key order survives.
        EXPECT_EQ(back.dump(indent), text);
    }

    // Signedness is preserved, not collapsed to double.
    JsonValue back = JsonValue::parse(doc.dump(0));
    EXPECT_EQ(back.at("uint_max").type(), JsonValue::Kind::Uint);
    EXPECT_EQ(back.at("uint_max").asUint(), 18446744073709551615ull);
    EXPECT_EQ(back.at("negative").type(), JsonValue::Kind::Int);
    EXPECT_EQ(back.at("negative").asInt(), -42);
    EXPECT_EQ(back.at("escapes").asString(),
              doc.at("escapes").asString());
}

TEST(JsonReader, RejectsMalformedInput)
{
    const char *bad[] = {
        "{} trailing",     // trailing garbage
        "{\"a\":}",        // missing value
        "[1,",             // unterminated array
        "\"open string",   // unterminated string
        "{\"a\" 1}",       // missing colon
        "01",              // leading zero
        "",                // empty document
    };
    for (const char *text : bad) {
        std::string err;
        JsonValue v = JsonValue::parse(text, &err);
        EXPECT_TRUE(v.isNull()) << text;
        EXPECT_FALSE(err.empty()) << text;
    }
}

TEST(RunRecord, CanonicalSerializationRoundTrips)
{
    RunRecord rec = makeRecord("iNPG", "QSL", 1, 1000000);
    rec.lco["acquires"] = static_cast<std::uint64_t>(320);
    rec.timeseries["samples"] = static_cast<std::uint64_t>(64);
    rec.stats["sim"]["roi_cycles"] = rec.roiCycles;

    const std::string line = rec.toJson().dump(0);
    std::string err;
    JsonValue doc = JsonValue::parse(line, &err);
    ASSERT_TRUE(err.empty()) << err;

    RunRecord back = RunRecord::fromJson(doc, &err);
    EXPECT_TRUE(err.empty()) << err;
    // serialize -> parse -> re-serialize is byte-identical (the
    // canonical fixed-key-order contract ledger diffs rely on).
    EXPECT_EQ(back.toJson().dump(0), line);
    EXPECT_EQ(back.configKey(), rec.configKey());
    EXPECT_EQ(back.seed, rec.seed);
    EXPECT_EQ(back.rttMean, rec.rttMean);
    EXPECT_EQ(back.stats.at("sim").at("roi_cycles").asUint(),
              rec.roiCycles);
}

TEST(RunRecord, RefusesForeignDocuments)
{
    // Wrong tag.
    JsonValue other = JsonValue::object();
    other["record"] = "something-else";
    other["schema_version"] = RUN_RECORD_SCHEMA_VERSION;
    std::string err;
    RunRecord rec = RunRecord::fromJson(other, &err);
    EXPECT_FALSE(err.empty());
    EXPECT_EQ(rec.benchmark, "");

    // Future schema version: refuse, never mis-parse.
    JsonValue future = makeRecord("iNPG", "QSL", 1, 100).toJson();
    future["schema_version"] = RUN_RECORD_SCHEMA_VERSION + 1;
    err.clear();
    RunRecord rec2 = RunRecord::fromJson(future, &err);
    EXPECT_FALSE(err.empty());
    EXPECT_EQ(rec2.benchmark, "");
}

TEST(RunRecord, SchemaVersionCompatibility)
{
    JsonValue doc = JsonValue::object();
    std::string why;
    EXPECT_FALSE(schemaVersionCompatible(doc, 1, &why));
    EXPECT_FALSE(why.empty());

    doc["schema_version"] = 2;
    EXPECT_FALSE(schemaVersionCompatible(doc, 1, &why));
    EXPECT_NE(why.find("2"), std::string::npos);

    doc["schema_version"] = 1;
    EXPECT_TRUE(schemaVersionCompatible(doc, 1));
}

TEST(RunRecord, ConfigKeyPairsAcrossThreadsAndImpl)
{
    RunRecord a = makeRecord("iNPG", "QSL", 1, 100);
    RunRecord b = a;
    // threads and impl are documented bit-identical in simulated
    // results, so they are excluded from the pairing identity.
    b.threads = 4;
    b.impl = "reference";
    EXPECT_EQ(a.configKey(), b.configKey());

    RunRecord c = a;
    c.seed = 2;
    EXPECT_NE(a.configKey(), c.configKey());
    RunRecord d = a;
    d.lock = "MCS";
    EXPECT_NE(a.configKey(), d.configKey());
}

TEST(ExperimentLedger, ConcurrentAppendsNeverTearLines)
{
    const std::string path = "test_run_record_ledger.jsonl";
    std::remove(path.c_str());
    {
        ExperimentLedger ledger(path);
        ASSERT_TRUE(ledger.ok());
        constexpr int WRITERS = 4;
        constexpr int PER_WRITER = 25;
        std::vector<std::thread> pool;
        for (int w = 0; w < WRITERS; ++w) {
            pool.emplace_back([&ledger, w] {
                for (int i = 0; i < PER_WRITER; ++i) {
                    const std::uint64_t seed =
                        static_cast<std::uint64_t>(w * PER_WRITER + i);
                    ledger.append(
                        makeRecord("iNPG", "QSL", seed, 1000 + seed));
                }
            });
        }
        for (std::thread &t : pool)
            t.join();
        EXPECT_EQ(ledger.appended(), 100u);
    }

    // Every line parses back as a full record (no torn writes) and
    // every seed arrived exactly once.
    std::string err;
    std::vector<RunRecord> records = ExperimentLedger::load(path, &err);
    EXPECT_TRUE(err.empty()) << err;
    ASSERT_EQ(records.size(), 100u);
    std::set<std::uint64_t> seeds;
    for (const RunRecord &rec : records) {
        EXPECT_EQ(rec.benchmark, "freq");
        seeds.insert(rec.seed);
    }
    EXPECT_EQ(seeds.size(), 100u);
    std::remove(path.c_str());
}

TEST(Report, DiffPairsByConfigAndCatchesDeltas)
{
    std::vector<RunRecord> a = {makeRecord("Original", "TAS", 1, 5000),
                                makeRecord("iNPG", "TAS", 1, 4000),
                                makeRecord("iNPG", "QSL", 1, 3000)};
    std::vector<RunRecord> b = a;

    DiffResult same = diffLedgers(a, b);
    EXPECT_TRUE(same.identical());
    EXPECT_EQ(same.pairedConfigs, 3u);
    // Deterministic rendering: the same inputs produce the same text.
    EXPECT_EQ(same.render(), diffLedgers(a, b).render());

    b[1].roiCycles += 1;
    DiffResult changed = diffLedgers(a, b);
    ASSERT_EQ(changed.deltas.size(), 1u);
    EXPECT_EQ(changed.deltas[0].metric, "roi_cycles");
    EXPECT_EQ(changed.deltas[0].configKey, a[1].configKey());

    // Unpaired configurations are reported on both sides.
    b.pop_back();
    b.push_back(makeRecord("OCOR", "QSL", 1, 2500));
    DiffResult moved = diffLedgers(a, b);
    ASSERT_EQ(moved.onlyInA.size(), 1u);
    ASSERT_EQ(moved.onlyInB.size(), 1u);
    EXPECT_EQ(moved.onlyInA[0], a[2].configKey());
}

TEST(Report, RegressGatesFreshAgainstBaseline)
{
    std::vector<RunRecord> baseline = {
        makeRecord("Original", "TAS", 1, 5000),
        makeRecord("iNPG", "TAS", 1, 4000)};

    // Identical reproduction passes; extra fresh-only runs stay legal
    // (ledgers grow append-only).
    std::vector<RunRecord> fresh = baseline;
    fresh.push_back(makeRecord("iNPG", "QSL", 1, 3000));
    RegressResult pass = regressLedger(fresh, baseline);
    EXPECT_TRUE(pass.pass);
    EXPECT_NE(pass.render().find("PASS"), std::string::npos);

    // A metric delta fails the gate.
    fresh[0].lockCohCycles += 1;
    RegressResult delta = regressLedger(fresh, baseline);
    EXPECT_FALSE(delta.pass);
    EXPECT_NE(delta.render().find("FAIL"), std::string::npos);

    // A baseline configuration missing from the fresh ledger fails.
    std::vector<RunRecord> partial = {baseline[0]};
    EXPECT_FALSE(regressLedger(partial, baseline).pass);
}

TEST(Report, AggregateIsDeterministic)
{
    std::vector<RunRecord> records;
    for (std::uint64_t seed = 1; seed <= 2; ++seed) {
        for (const char *mech : {"Original", "iNPG"}) {
            for (const char *lock : {"TAS", "QSL"}) {
                records.push_back(
                    makeRecord(mech, lock, seed, 4000 + 100 * seed));
            }
        }
    }
    const std::string report = aggregateReport(records);
    EXPECT_EQ(report, aggregateReport(records));
    // The Fig-2 table and its row labels are present.
    EXPECT_NE(report.find("LCO share of running time"),
              std::string::npos);
    EXPECT_NE(report.find("iNPG"), std::string::npos);
}

} // namespace
} // namespace inpg
