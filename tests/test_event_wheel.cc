/**
 * @file
 * Timing-wheel EventQueue tests: FIFO order within a cycle across wheel
 * rollover, far-future overflow promotion, scheduling from inside a
 * callback, clear(), small-buffer accounting, and a differential fuzz
 * run against the reference binary-heap scheduler.
 */

#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <utility>
#include <vector>

#include "common/rng.hh"
#include "common/types.hh"
#include "sim/event_queue.hh"

namespace inpg {
namespace {

using Fired = std::vector<std::pair<Cycle, int>>;

TEST(EventWheel, SameCycleFifoAcrossRollover)
{
    EventQueue q;
    Fired fired;
    // Three events per cycle over a span wider than the 256-entry
    // wheel, scheduled in a scrambled cycle order but a known per-cycle
    // order: ids 0, 1, 2 for each cycle.
    const Cycle span = 700;
    std::vector<Cycle> cycles;
    for (Cycle c = 0; c < span; c += 7)
        cycles.push_back(c);
    // Scramble deterministically so the wheel sees out-of-order inserts.
    Rng rng(12345);
    for (std::size_t i = cycles.size(); i > 1; --i)
        std::swap(cycles[i - 1], cycles[rng.nextBounded(i)]);
    for (int id = 0; id < 3; ++id)
        for (Cycle c : cycles)
            q.schedule(c, [&fired, c, id] { fired.emplace_back(c, id); });
    // Drain in chunks so the window rolls over several times.
    for (Cycle now = 0; now < span + 64; now += 64)
        q.runDue(now);
    EXPECT_TRUE(q.empty());
    ASSERT_EQ(fired.size(), 3 * cycles.size());
    for (std::size_t i = 1; i < fired.size(); ++i) {
        EXPECT_LE(fired[i - 1].first, fired[i].first);
        if (fired[i - 1].first == fired[i].first)
            // Same cycle: scheduling order (id ascending here, since
            // id-0 events were all scheduled before id-1 events).
            EXPECT_LT(fired[i - 1].second, fired[i].second);
    }
}

TEST(EventWheel, FarFutureOverflowPromotion)
{
    EventQueue q;
    Fired fired;
    // Far beyond the wheel window: must park in the overflow heap and
    // still fire exactly at its cycle, FIFO-ordered against an event
    // scheduled directly once the window reaches that cycle.
    const Cycle far = 100000;
    q.schedule(far, [&fired, far] { fired.emplace_back(far, 0); });
    q.schedule(5, [&fired] { fired.emplace_back(5, -1); });
    EXPECT_GE(q.overflowScheduled(), 1u);
    EXPECT_EQ(q.nextEventCycle(), 5u);
    q.runDue(far - 1);
    ASSERT_EQ(fired.size(), 1u);
    EXPECT_EQ(q.nextEventCycle(), far);
    // Now in-window: this one is scheduled after the promoted event and
    // must fire after it.
    q.schedule(far, [&fired, far] { fired.emplace_back(far, 1); });
    q.runDue(far);
    ASSERT_EQ(fired.size(), 3u);
    EXPECT_EQ(fired[1], std::make_pair(far, 0));
    EXPECT_EQ(fired[2], std::make_pair(far, 1));
    EXPECT_TRUE(q.empty());
}

TEST(EventWheel, ScheduleFromInsideCallback)
{
    EventQueue q;
    Fired fired;
    q.schedule(10, [&] {
        fired.emplace_back(10, 0);
        // Same-cycle re-entry: must run within this runDue call, after
        // everything already queued for cycle 10.
        q.schedule(10, [&] { fired.emplace_back(10, 2); });
        // And a short-latency follow-up.
        q.schedule(13, [&] { fired.emplace_back(13, 3); });
    });
    q.schedule(10, [&] { fired.emplace_back(10, 1); });
    q.runDue(10);
    ASSERT_EQ(fired.size(), 3u);
    EXPECT_EQ(fired[0], std::make_pair(Cycle{10}, 0));
    EXPECT_EQ(fired[1], std::make_pair(Cycle{10}, 1));
    EXPECT_EQ(fired[2], std::make_pair(Cycle{10}, 2));
    EXPECT_EQ(q.nextEventCycle(), 13u);
    q.runDue(13);
    ASSERT_EQ(fired.size(), 4u);
    EXPECT_EQ(fired[3], std::make_pair(Cycle{13}, 3));
}

TEST(EventWheel, ClearDropsWheelAndOverflow)
{
    EventQueue q;
    int ran = 0;
    for (Cycle c = 0; c < 100; ++c)
        q.schedule(c, [&ran] { ++ran; });
    q.schedule(1 << 20, [&ran] { ++ran; });
    EXPECT_EQ(q.size(), 101u);
    q.clear();
    EXPECT_TRUE(q.empty());
    EXPECT_EQ(q.nextEventCycle(), CYCLE_NEVER);
    q.runDue(1 << 21);
    EXPECT_EQ(ran, 0);
    // The queue stays usable after clear().
    q.schedule((1 << 21) + 1, [&ran] { ++ran; });
    q.runDue((1 << 21) + 1);
    EXPECT_EQ(ran, 1);
}

TEST(EventWheel, SmallCallbacksDoNotAllocate)
{
    EventQueue q;
    std::uint64_t x = 0;
    for (int i = 0; i < 64; ++i)
        q.schedule(static_cast<Cycle>(i), [&x] { ++x; });
    EXPECT_EQ(q.scheduleHeapAllocs(), 0u);
    // A capture larger than the SmallCallback inline buffer must spill
    // (and be counted) but still run correctly.
    std::array<std::uint64_t, 16> big{};
    big[15] = 7;
    q.schedule(100, [&x, big] { x += big[15]; });
    EXPECT_EQ(q.scheduleHeapAllocs(), 1u);
    q.runDue(100);
    EXPECT_EQ(x, 64u + 7u);
}

TEST(EventWheel, ReferenceModeCountsPerScheduleAllocations)
{
    EventQueue q;
    q.setReferenceMode(true);
    int ran = 0;
    for (int i = 0; i < 10; ++i)
        q.schedule(static_cast<Cycle>(i), [&ran] { ++ran; });
    EXPECT_GE(q.scheduleHeapAllocs(), 10u);
    q.runDue(10);
    EXPECT_EQ(ran, 10);
    // Only legal while empty; switching back must work here.
    q.setReferenceMode(false);
    EXPECT_FALSE(q.referenceMode());
}

/**
 * Differential fuzz: drive a wheel queue and a reference-heap queue
 * with an identical schedule/run stream (including re-entrant
 * schedules decided deterministically per event id) and require
 * identical execution logs.
 */
TEST(EventWheel, DifferentialFuzzAgainstReferenceHeap)
{
    struct Harness {
        EventQueue q;
        Fired log;
        int nextId = 1000000; // ids for callback-spawned children

        void
        scheduleEvent(Cycle when, int id)
        {
            q.schedule(when, [this, when, id] {
                log.emplace_back(when, id);
                // Deterministic re-entry derived from the id alone so
                // both queues make identical decisions: every fourth
                // id spawns a child, every twelfth at the same cycle.
                if (id % 4 == 0) {
                    Cycle delta = id % 12 == 0
                        ? 0
                        : static_cast<Cycle>(id % 700 + 1);
                    scheduleEvent(when + delta, nextId++);
                }
            });
        }
    };

    Harness wheel;
    Harness ref;
    ref.q.setReferenceMode(true);

    Rng rng(0xfeedULL);
    Cycle now = 0;
    int id = 0;
    for (int round = 0; round < 400; ++round) {
        const int burst = static_cast<int>(rng.nextBounded(6));
        for (int i = 0; i < burst; ++i) {
            // Mix of same-cycle, in-window, and far-future deltas.
            const std::uint64_t kind = rng.nextBounded(10);
            Cycle delta;
            if (kind == 0)
                delta = 0;
            else if (kind < 8)
                delta = static_cast<Cycle>(rng.nextBounded(256));
            else
                delta = static_cast<Cycle>(rng.nextBounded(20000));
            wheel.scheduleEvent(now + delta, id);
            ref.scheduleEvent(now + delta, id);
            ++id;
        }
        now += static_cast<Cycle>(rng.nextBounded(300));
        wheel.q.runDue(now);
        ref.q.runDue(now);
        ASSERT_EQ(wheel.log.size(), ref.log.size()) << "round " << round;
    }
    // Drain everything still pending (far-future stragglers).
    now += 30000;
    wheel.q.runDue(now);
    ref.q.runDue(now);
    EXPECT_TRUE(wheel.q.empty());
    EXPECT_TRUE(ref.q.empty());
    ASSERT_EQ(wheel.log.size(), ref.log.size());
    EXPECT_EQ(wheel.log, ref.log);
    // The wheel must have exercised the overflow path and stayed
    // allocation-free for these small captures.
    EXPECT_GT(wheel.q.overflowScheduled(), 0u);
    EXPECT_EQ(wheel.q.scheduleHeapAllocs(), 0u);
    EXPECT_GT(ref.q.scheduleHeapAllocs(), 0u);
}

} // namespace
} // namespace inpg
