/**
 * @file
 * In-process tests for the explicit-state protocol model checker
 * (src/verify/model_check.*): clean exhaustive sweeps over the shipped
 * tables, determinism of the exploration itself, the seeded-mutation
 * self-test, and a golden-file check that pins the counterexample
 * witness format.
 *
 * The golden trace lives in tests/golden/; regenerate it after a
 * deliberate format change with
 *     INPG_REGEN_GOLDEN=1 ./build/tests/inpg_tests \
 *         --gtest_filter=ModelCheck.GoldenWitness
 * and review the diff like any other source change.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "verify/model_check.hh"

namespace inpg {
namespace {

McConfig
baseConfig(McScenario sc, bool big_router)
{
    McConfig cfg;
    cfg.numCores = 2;
    cfg.bigRouter = big_router;
    cfg.scenario = sc;
    return cfg;
}

TEST(ModelCheck, TasN2ExhaustiveClean)
{
    McResult r = runModelCheck(baseConfig(McScenario::Tas, true));
    ASSERT_TRUE(r.ok()) << r.violation->traceText();
    EXPECT_TRUE(r.complete);
    // The composed space is non-trivial (thousands of states) and the
    // run must quiesce somewhere.
    EXPECT_GT(r.statesVisited, 1000u);
    EXPECT_GT(r.finalStates, 0u);
    EXPECT_EQ(r.emitsDropped, 0u);
}

TEST(ModelCheck, AllScenariosN2Clean)
{
    for (McScenario sc : mcAllScenarios()) {
        for (bool br : {false, true}) {
            McResult r = runModelCheck(baseConfig(sc, br));
            ASSERT_TRUE(r.ok())
                << mcScenarioName(sc) << " big-router=" << br << "\n"
                << r.violation->traceText();
            EXPECT_TRUE(r.complete)
                << mcScenarioName(sc) << " big-router=" << br;
        }
    }
}

TEST(ModelCheck, ExplorationIsDeterministic)
{
    McResult a = runModelCheck(baseConfig(McScenario::Tas, true));
    McResult b = runModelCheck(baseConfig(McScenario::Tas, true));
    EXPECT_EQ(a.statesVisited, b.statesVisited);
    EXPECT_EQ(a.transitions, b.transitions);
    EXPECT_EQ(a.finalStates, b.finalStates);
    EXPECT_EQ(a.maxDepth, b.maxDepth);
}

TEST(ModelCheck, SymmetryReductionShrinksTheSpace)
{
    McConfig sym = baseConfig(McScenario::Tas, true);
    McConfig raw = sym;
    raw.symmetry = false;
    McResult a = runModelCheck(sym);
    McResult b = runModelCheck(raw);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    // Canonicalization must only merge states, never invent or lose
    // violations; with two interchangeable cores it strictly shrinks
    // the visited set.
    EXPECT_LT(a.statesVisited, b.statesVisited);
    EXPECT_EQ(a.finalStates > 0, b.finalStates > 0);
}

TEST(ModelCheck, SelfTestCatchesEveryCatalogMutation)
{
    McSelfTestOutcome out = runMcSelfTest(false, nullptr);
    for (const std::string &f : out.failures)
        ADD_FAILURE() << f;
    EXPECT_TRUE(out.ok());
    EXPECT_GE(out.mutationsRun, 8);
    EXPECT_EQ(out.caught, out.mutationsRun);
}

TEST(ModelCheck, GoldenWitness)
{
    // This catalog entry runs with symmetry off on a fixed two-core,
    // no-big-router configuration, so its BFS witness is fully
    // deterministic -- byte-stable across runs and platforms.
    const McMutation *m = mcFindMutation("ownedself-getx-selfforward");
    ASSERT_NE(m, nullptr);
    ASSERT_FALSE(m->config.symmetry);

    McResult r = runMutatedModelCheck(*m);
    ASSERT_TRUE(r.violation.has_value());
    EXPECT_EQ(r.violation->invariant, "deadlock");
    const std::string got = r.violation->traceText();
    ASSERT_FALSE(got.empty());

    const std::string path = std::string(INPG_TEST_GOLDEN_DIR) +
                             "/mc_witness_ownedself_getx.txt";
    if (std::getenv("INPG_REGEN_GOLDEN")) {
        std::ofstream out(path, std::ios::binary);
        ASSERT_TRUE(out.good()) << "cannot write " << path;
        out << got;
        GTEST_SKIP() << "regenerated " << path;
    }
    std::ifstream in(path, std::ios::binary);
    ASSERT_TRUE(in.good())
        << "missing golden file " << path
        << " (regenerate with INPG_REGEN_GOLDEN=1)";
    std::ostringstream want;
    want << in.rdbuf();
    EXPECT_EQ(got, want.str())
        << "witness drifted from " << path
        << "; if the change is deliberate, regenerate with "
           "INPG_REGEN_GOLDEN=1 and review the diff";
}

} // namespace
} // namespace inpg
