/**
 * @file
 * Determinism regression tests for the activity-driven kernel: seeded
 * runs must reproduce exactly, and idle fast-forwarding must be
 * invisible in simulated results -- identical cycle counts and LCO
 * statistics with iNPG off and on, and across the parallel sweep
 * runner.
 */

#include <gtest/gtest.h>

#include <string>

#include "harness/sweep_runner.hh"
#include "harness/system.hh"
#include "telemetry/watchdog.hh"
#include "workload/benchmark_profile.hh"
#include "workload/workload.hh"

namespace inpg {
namespace {

/** Everything a run can legally differ in shows up in these fields. */
struct Fingerprint {
    Cycle simCycles = 0;
    Cycle roiCycles = 0;
    std::uint64_t csCompleted = 0;
    Cycle parallelCycles = 0;
    Cycle cohCycles = 0;
    Cycle sleepCycles = 0;
    Cycle cseCycles = 0;
    std::uint64_t earlyInvs = 0;
    std::uint64_t flitsSent = 0;

    bool
    operator==(const Fingerprint &o) const
    {
        return simCycles == o.simCycles && roiCycles == o.roiCycles &&
               csCompleted == o.csCompleted &&
               parallelCycles == o.parallelCycles &&
               cohCycles == o.cohCycles && sleepCycles == o.sleepCycles &&
               cseCycles == o.cseCycles && earlyInvs == o.earlyInvs &&
               flitsSent == o.flitsSent;
    }
};

Fingerprint
runOnce(Mechanism mech, LockKind lock, bool fast_forward,
        std::uint64_t *ff_cycles = nullptr, bool fast_structures = true,
        int mesh = 4)
{
    SystemConfig cfg;
    cfg.noc.meshWidth = mesh;
    cfg.noc.meshHeight = mesh;
    cfg.mechanism = mech;
    cfg.lockKind = lock;
    // Hot-path data structures (timing wheel, flat hash, precomputed
    // routes, mask-driven allocation, SoA VC state) vs their reference
    // versions.
    cfg.noc.precomputeRoutes = fast_structures;
    cfg.noc.fastAllocScan = fast_structures;
    cfg.noc.soaVcState = fast_structures;
    cfg.coh.flatContainers = fast_structures;
    cfg.finalize();

    System system(cfg);
    system.sim().events().setReferenceMode(!fast_structures);
    system.sim().setFastForward(fast_forward);

    Workload::Params wp;
    wp.profile = benchmarkByName("ferret");
    wp.threads = cfg.numCores();
    wp.csScale = 0.1;
    wp.lockKind = lock;
    wp.seed = cfg.seed;
    Workload workload(wp, system.coherent(), system.locks(),
                      system.sim());
    workload.start();
    system.runUntil([&] { return workload.done(); });

    Fingerprint f;
    f.simCycles = system.sim().now();
    f.roiCycles = workload.roiFinish();
    f.csCompleted = workload.csCompleted();
    f.parallelCycles = workload.totalCycles(ThreadPhase::Parallel);
    f.cohCycles = workload.totalCycles(ThreadPhase::Coh);
    f.sleepCycles = workload.totalCycles(ThreadPhase::Sleep);
    f.cseCycles = workload.totalCycles(ThreadPhase::Cse);
    f.earlyInvs = system.totalEarlyInvs();
    for (NodeId n = 0; n < system.coherent().network().numRouters();
         ++n)
        f.flitsSent += system.coherent().network().router(n)
                           .stats.value("flits_sent");
    if (ff_cycles)
        *ff_cycles = system.sim().cyclesFastForwarded();
    return f;
}

TEST(Determinism, SeededRunsReproduceExactly)
{
    Fingerprint a = runOnce(Mechanism::Original, LockKind::Qsl, true);
    Fingerprint b = runOnce(Mechanism::Original, LockKind::Qsl, true);
    EXPECT_TRUE(a == b);
}

TEST(Determinism, FastForwardIsInvisibleWithoutInpg)
{
    std::uint64_t skipped = 0;
    Fingerprint off = runOnce(Mechanism::Original, LockKind::Qsl, false);
    Fingerprint on =
        runOnce(Mechanism::Original, LockKind::Qsl, true, &skipped);
    EXPECT_TRUE(off == on);
    // A QSL workload idles while sleepers wait; the kernel must
    // actually have elided work.
    EXPECT_GT(skipped, 0u);
}

TEST(Determinism, FastForwardIsInvisibleWithInpg)
{
    std::uint64_t skipped = 0;
    Fingerprint off = runOnce(Mechanism::Inpg, LockKind::Qsl, false);
    Fingerprint on =
        runOnce(Mechanism::Inpg, LockKind::Qsl, true, &skipped);
    EXPECT_TRUE(off == on);
    EXPECT_GT(skipped, 0u);
}

TEST(Determinism, FastForwardIsInvisibleForSpinLocks)
{
    // TAS spinners keep the fabric busy; there is little to skip, but
    // the results must still match exactly.
    Fingerprint off = runOnce(Mechanism::Original, LockKind::Tas, false);
    Fingerprint on = runOnce(Mechanism::Original, LockKind::Tas, true);
    EXPECT_TRUE(off == on);
}

TEST(Determinism, HotPathStructuresAreInvisibleForSpinLocks)
{
    // Timing wheel vs reference heap, flat-hash vs tree/hash maps,
    // precomputed vs per-flit routing, mask-driven vs full-scan
    // allocation: a busy TAS run must be bit-identical either way.
    Fingerprint fast = runOnce(Mechanism::Original, LockKind::Tas, true);
    Fingerprint ref =
        runOnce(Mechanism::Original, LockKind::Tas, true, nullptr, false);
    EXPECT_TRUE(fast == ref);
}

TEST(Determinism, HotPathStructuresAreInvisibleWithInpgOcor)
{
    // iNPG+OCOR enables the Priority switch policy, covering the
    // priority/aging arbitration path of the mask-based allocators.
    Fingerprint fast = runOnce(Mechanism::InpgOcor, LockKind::Qsl, true);
    Fingerprint ref =
        runOnce(Mechanism::InpgOcor, LockKind::Qsl, true, nullptr, false);
    EXPECT_TRUE(fast == ref);
}

TEST(Determinism, HotPathStructuresAreInvisibleAt8x8)
{
    // 64 nodes: exercises the SoA masks and ring indices across a
    // bigger radix and longer routes than the 4x4 default.
    Fingerprint fast = runOnce(Mechanism::Original, LockKind::Tas, true,
                               nullptr, true, 8);
    Fingerprint ref = runOnce(Mechanism::Original, LockKind::Tas, true,
                              nullptr, false, 8);
    EXPECT_TRUE(fast == ref);
}

TEST(Determinism, HotPathStructuresAreInvisibleAt8x8WithInpg)
{
    // iNPG big-routers add the generator port and its queue to every
    // lock-home router; the SoA layout must reproduce their schedule
    // exactly at 8x8 too.
    Fingerprint fast = runOnce(Mechanism::Inpg, LockKind::Qsl, true,
                               nullptr, true, 8);
    Fingerprint ref = runOnce(Mechanism::Inpg, LockKind::Qsl, true,
                              nullptr, false, 8);
    EXPECT_TRUE(fast == ref);
}

TEST(Determinism, SeededHangReportIsIdenticalAcrossVcLayouts)
{
    // A protocol hang (first directory response dropped) trips the
    // watchdog; its structured report dumps router/NI state. Fast and
    // Reference VC layouts must hang at the same cycle with the same
    // report -- the diagnosis path reads occupancy through the shared
    // accessors, not the layout.
    auto hangReport = [](bool soa_layout) {
        SystemConfig cfg;
        cfg.noc.meshWidth = 4;
        cfg.noc.meshHeight = 4;
        cfg.lockKind = LockKind::Tas;
        cfg.noc.soaVcState = soa_layout;
        cfg.coh.dropDirResponseNth = 1;
        cfg.telemetry.watchdogWindow = 50000;
        cfg.telemetry.recorder = true;
        cfg.telemetry.packets = true;
        cfg.finalize();
        System system(cfg);

        Workload::Params wp;
        wp.profile = benchmarkByName("freq");
        wp.threads = cfg.numCores();
        wp.csScale = 0.01;
        wp.lockKind = cfg.lockKind;
        Workload w(wp, system.coherent(), system.locks(), system.sim());
        w.start();
        try {
            system.runUntil([&] { return w.done(); }, 5000000);
        } catch (const SimHangError &e) {
            return e.reportJson();
        }
        ADD_FAILURE() << "seeded hang did not trip the watchdog";
        return std::string();
    };
    EXPECT_EQ(hangReport(true), hangReport(false));
}

TEST(Determinism, SweepMatchesSerialRuns)
{
    RunConfig rc;
    rc.profile = benchmarkByName("ferret");
    rc.system.noc.meshWidth = 4;
    rc.system.noc.meshHeight = 4;
    rc.csScale = 0.05;

    std::vector<RunConfig> configs;
    for (Mechanism m : ALL_MECHANISMS) {
        rc.system.mechanism = m;
        configs.push_back(rc);
    }

    SweepOptions serial;
    serial.threads = 1;
    SweepOptions pooled;
    pooled.threads = 2;
    std::vector<RunResult> a = runSweep(configs, serial);
    std::vector<RunResult> b = runSweep(configs, pooled);

    ASSERT_EQ(a.size(), configs.size());
    ASSERT_EQ(b.size(), configs.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].mechanism, configs[i].system.mechanism);
        EXPECT_EQ(a[i].roiCycles, b[i].roiCycles) << "config " << i;
        EXPECT_EQ(a[i].csCompleted, b[i].csCompleted) << "config " << i;
        EXPECT_EQ(a[i].cohCycles, b[i].cohCycles) << "config " << i;
        EXPECT_EQ(a[i].earlyInvs, b[i].earlyInvs) << "config " << i;
    }
}

} // namespace
} // namespace inpg
