/**
 * @file
 * Simulation kernel tests: event queue ordering and the cycle loop.
 */

#include <gtest/gtest.h>

#include "sim/simulator.hh"

namespace inpg {
namespace {

TEST(EventQueue, FiresInTimeOrder)
{
    EventQueue q;
    std::vector<int> order;
    q.schedule(30, [&] { order.push_back(3); });
    q.schedule(10, [&] { order.push_back(1); });
    q.schedule(20, [&] { order.push_back(2); });
    q.runDue(25);
    ASSERT_EQ(order.size(), 2u);
    EXPECT_EQ(order[0], 1);
    EXPECT_EQ(order[1], 2);
    q.runDue(30);
    ASSERT_EQ(order.size(), 3u);
    EXPECT_EQ(order[2], 3);
}

TEST(EventQueue, SameCycleIsFifo)
{
    EventQueue q;
    std::vector<int> order;
    for (int i = 0; i < 10; ++i)
        q.schedule(5, [&order, i] { order.push_back(i); });
    q.runDue(5);
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(EventQueue, CallbackMaySchedule)
{
    EventQueue q;
    int fired = 0;
    q.schedule(1, [&] {
        ++fired;
        q.schedule(1, [&] { ++fired; }); // due immediately
        q.schedule(9, [&] { ++fired; }); // later
    });
    q.runDue(5);
    EXPECT_EQ(fired, 2);
    EXPECT_EQ(q.nextEventCycle(), 9u);
    q.runDue(9);
    EXPECT_EQ(fired, 3);
    EXPECT_TRUE(q.empty());
}

TEST(EventQueue, NextEventCycleAndClear)
{
    EventQueue q;
    EXPECT_EQ(q.nextEventCycle(), CYCLE_NEVER);
    q.schedule(42, [] {});
    EXPECT_EQ(q.nextEventCycle(), 42u);
    q.clear();
    EXPECT_TRUE(q.empty());
}

struct CountingTick : Ticking {
    int ticks = 0;
    Cycle last = 0;

    void
    tick(Cycle now) override
    {
        ++ticks;
        last = now;
    }
};

TEST(Simulator, TicksEveryRegisteredComponentOncePerCycle)
{
    Simulator sim;
    CountingTick a;
    CountingTick b;
    sim.addTicking(&a);
    sim.addTicking(&b);
    sim.run(10);
    EXPECT_EQ(a.ticks, 10);
    EXPECT_EQ(b.ticks, 10);
    EXPECT_EQ(a.last, 9u);
    EXPECT_EQ(sim.now(), 10u);
}

TEST(Simulator, EventsRunBeforeTicksOfTheSameCycle)
{
    Simulator sim;
    struct Probe : Ticking {
        bool *flag;
        bool seen_at_tick = false;

        void
        tick(Cycle) override
        {
            seen_at_tick = *flag;
        }
    };
    bool flag = false;
    Probe p;
    p.flag = &flag;
    sim.addTicking(&p);
    sim.scheduleIn(0, [&] { flag = true; });
    sim.step();
    EXPECT_TRUE(p.seen_at_tick);
}

TEST(Simulator, RunUntilStopsAtPredicate)
{
    Simulator sim;
    bool ok = sim.runUntil([&] { return sim.now() >= 17; }, 100);
    EXPECT_TRUE(ok);
    EXPECT_EQ(sim.now(), 17u);
    ok = sim.runUntil([] { return false; }, 5);
    EXPECT_FALSE(ok);
    EXPECT_EQ(sim.now(), 22u);
}

TEST(Simulator, ScheduleInUsesCurrentCycle)
{
    Simulator sim;
    sim.run(5);
    Cycle fired_at = 0;
    sim.scheduleIn(3, [&] { fired_at = sim.now(); });
    sim.run(10);
    EXPECT_EQ(fired_at, 8u);
}

// ---------------------------------------------------------------------
// Activity contract / fast-forward
// ---------------------------------------------------------------------

struct SleepyTick : Ticking {
    int ticks = 0;
    Cycle last = 0;
    bool sleepAfterTick = false;

    void
    tick(Cycle now) override
    {
        ++ticks;
        last = now;
        if (sleepAfterTick)
            suspendSelf();
    }
};

TEST(Simulator, SuspendedComponentLeavesTheTickLoop)
{
    Simulator sim;
    SleepyTick a;
    SleepyTick b;
    b.sleepAfterTick = true;
    sim.addTicking(&a);
    sim.addTicking(&b);
    EXPECT_EQ(sim.numComponents(), 2u);
    EXPECT_EQ(sim.activeComponents(), 2u);

    sim.run(3);
    EXPECT_EQ(a.ticks, 3);
    EXPECT_EQ(b.ticks, 1); // slept after its first tick
    EXPECT_EQ(sim.activeComponents(), 1u);

    b.sleepAfterTick = false;
    b.sleepToken().wake();
    b.sleepToken().wake(); // idempotent
    EXPECT_EQ(sim.activeComponents(), 2u);
    sim.run(2);
    EXPECT_EQ(b.ticks, 3);
}

TEST(Simulator, FastForwardSkipsFullyIdleSpans)
{
    Simulator sim;
    SleepyTick t;
    t.sleepAfterTick = true;
    sim.addTicking(&t);
    sim.scheduleIn(50, [&] { t.sleepToken().wake(); });
    sim.run(100);
    // Ticked at 0, slept, woken by the event at 50, slept again.
    EXPECT_EQ(t.ticks, 2);
    EXPECT_EQ(t.last, 50u);
    EXPECT_EQ(sim.now(), 100u);
    EXPECT_EQ(sim.cyclesFastForwarded(), 98u);
    EXPECT_EQ(sim.fastForwardJumps(), 2u);
}

TEST(Simulator, FastForwardOffExecutesEveryCycle)
{
    Simulator sim;
    sim.setFastForward(false);
    sim.run(25);
    EXPECT_EQ(sim.now(), 25u);
    EXPECT_EQ(sim.cyclesFastForwarded(), 0u);
    EXPECT_EQ(sim.fastForwardJumps(), 0u);
}

TEST(Simulator, RunUntilStateChangeJumpsToTheHorizon)
{
    Simulator sim;
    bool flag = false;
    sim.scheduleIn(40, [&] { flag = true; });
    bool ok = sim.runUntil([&] { return flag; }, 100,
                           Simulator::PredicateMode::StateChange);
    EXPECT_TRUE(ok);
    // Seed semantics: the event fires during cycle 40, the predicate
    // observation lands at 41.
    EXPECT_EQ(sim.now(), 41u);
    EXPECT_EQ(sim.cyclesFastForwarded(), 40u);
}

TEST(Simulator, RunUntilEveryCycleSeesClockPredicatesWhileIdle)
{
    // Same as RunUntilStopsAtPredicate but asserting the span was
    // fast-forwarded rather than stepped.
    Simulator sim;
    bool ok = sim.runUntil([&] { return sim.now() >= 17; }, 100);
    EXPECT_TRUE(ok);
    EXPECT_EQ(sim.now(), 17u);
    EXPECT_GT(sim.cyclesFastForwarded(), 0u);
}

TEST(SleepToken, UnboundTokenIsANoOp)
{
    SleepyTick t;
    t.sleepToken().wake();
    t.sleepAfterTick = true; // suspendSelf on an unbound token
    t.tick(0);
    EXPECT_EQ(t.ticks, 1);
    EXPECT_FALSE(t.sleepToken().bound());
}

} // namespace
} // namespace inpg
