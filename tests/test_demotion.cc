/**
 * @file
 * Tests of the lock-acquire demotion protocol (paper Fig. 4 Step 4: the
 * winner answers losers with a valid shared copy) and of the bitwise
 * atomics backing the packed ABQL flag array.
 */

#include <gtest/gtest.h>

#include "coh/coherent_system.hh"
#include "coh/golden_memory.hh"
#include "sim/simulator.hh"

namespace inpg {
namespace {

struct DemoHarness {
    DemoHarness()
    {
        nocCfg.meshWidth = 4;
        nocCfg.meshHeight = 4;
        sys = std::make_unique<CoherentSystem>(nocCfg, cohCfg, sim);
        sys->setOpLog([this](const OpRecord &r) { golden.record(r); });
    }

    void
    runUntil(const std::function<bool()> &done, Cycle max = 200000)
    {
        ASSERT_TRUE(sim.runUntil(done, max)) << "timeout";
    }

    NocConfig nocCfg;
    CohConfig cohCfg;
    Simulator sim;
    std::unique_ptr<CoherentSystem> sys;
    GoldenMemory golden;
};

TEST(BitAtomics, FetchOrFetchAndSemantics)
{
    DemoHarness h;
    Addr a = h.cohCfg.lineHomedAt(3);
    std::uint64_t seen_or = 1;
    std::uint64_t seen_and = 1;
    bool done = false;
    h.sys->l1(0).issueAtomic(a, AtomicOp::FetchOr, 0b1010, 0, false,
                             [&](std::uint64_t old, bool) {
        seen_or = old;
        h.sys->l1(0).issueAtomic(a, AtomicOp::FetchAnd, 0b0010, 0, false,
                                 [&](std::uint64_t old2, bool) {
            seen_and = old2;
            done = true;
        });
    });
    h.runUntil([&] { return done; });
    EXPECT_EQ(seen_or, 0u);
    EXPECT_EQ(seen_and, 0b1010u);
    EXPECT_EQ(h.sys->l1(0).lineValue(a), 0b0010u);
    EXPECT_EQ(h.golden.verify(), "");
}

TEST(BitAtomics, ConcurrentOrsSetAllBits)
{
    DemoHarness h;
    Addr a = h.cohCfg.lineHomedAt(9);
    int completions = 0;
    for (CoreId c = 0; c < 16; ++c) {
        h.sys->l1(c).issueAtomic(a, AtomicOp::FetchOr, 1ULL << c, 0,
                                 false, [&](std::uint64_t, bool) {
                                     ++completions;
                                 });
    }
    h.runUntil([&] { return completions == 16; });
    EXPECT_EQ(h.golden.finalValue(a), 0xFFFFu);
    EXPECT_EQ(h.golden.verify(), "");
}

TEST(Demotion, HeldLockDemotesCompetingSwaps)
{
    DemoHarness h;
    Addr lock = h.cohCfg.lineHomedAt(6);
    // Core 0 takes the lock.
    bool owned = false;
    h.sys->l1(0).issueAtomic(lock, AtomicOp::Swap, 1, 0, true,
                             [&](std::uint64_t old, bool demoted) {
                                 EXPECT_EQ(old, 0u);
                                 EXPECT_FALSE(demoted);
                                 owned = true;
                             });
    h.runUntil([&] { return owned; });

    // Competing demotable swaps must be demoted: observe 1, write
    // nothing, and leave core 0's ownership intact.
    int completions = 0;
    int demoted_count = 0;
    for (CoreId c = 1; c <= 6; ++c) {
        h.sys->l1(c).issueAtomic(lock, AtomicOp::Swap, 1, 0, true,
                                 [&](std::uint64_t old, bool demoted) {
                                     EXPECT_EQ(old, 1u);
                                     demoted_count += demoted ? 1 : 0;
                                     ++completions;
                                 },
                                 /*demotable=*/true);
    }
    h.runUntil([&] { return completions == 6; });
    EXPECT_EQ(demoted_count, 6);
    EXPECT_EQ(h.golden.finalValue(lock), 1u);
    EXPECT_EQ(h.golden.verify(), "");
    // The losers received valid shared copies to spin on locally
    // (paper Fig. 4 Step 4) -- at least the late ones that were not
    // invalidated by a racing epoch.
    int sharers = 0;
    for (CoreId c = 1; c <= 6; ++c)
        sharers += h.sys->l1(c).lineState(lock) == L1State::S ? 1 : 0;
    EXPECT_GT(sharers, 0);
}

TEST(Demotion, FreeLockEscalatesInsteadOfFalseSuccess)
{
    DemoHarness h;
    Addr lock = h.cohCfg.lineHomedAt(2);
    // Warm: core 0 acquires and releases, staying directory owner.
    bool released = false;
    h.sys->l1(0).issueAtomic(lock, AtomicOp::Swap, 1, 0, true,
                             [&](std::uint64_t, bool) {
        h.sys->l1(0).issueStore(lock, 0, true,
                                [&](std::uint64_t) { released = true; });
    });
    h.runUntil([&] { return released; });

    // A demotable swap now observes 0 via demotion and must escalate
    // rather than claim a lock it never wrote: the completion contract
    // says (old == 0 && demoted) is a retry, not an acquisition. The
    // caller-side escalation is exercised through the lock layer; here
    // we assert the L1 reports demotion honestly.
    bool done = false;
    std::uint64_t old_val = 99;
    bool was_demoted = false;
    h.sys->l1(5).issueAtomic(lock, AtomicOp::Swap, 1, 0, true,
                             [&](std::uint64_t old, bool demoted) {
                                 old_val = old;
                                 was_demoted = demoted;
                                 done = true;
                             },
                             /*demotable=*/true);
    h.runUntil([&] { return done; });
    if (was_demoted) {
        // Demoted with 0: nothing was written.
        EXPECT_EQ(old_val, 0u);
        EXPECT_EQ(h.golden.finalValue(lock), 0u);
    } else {
        // Escalated at the directory (value was 0): a real acquisition.
        EXPECT_EQ(old_val, 0u);
        EXPECT_EQ(h.golden.finalValue(lock), 1u);
    }
    EXPECT_EQ(h.golden.verify(), "");
}

TEST(Demotion, NonIdempotentAtomicsAreNeverDemoted)
{
    DemoHarness h;
    Addr ctr = h.cohCfg.lineHomedAt(7);
    // Hold "the lock value" at 5 via core 0 so demotion would trigger
    // if it were allowed.
    bool primed = false;
    h.sys->l1(0).issueStore(ctr, 5, true,
                            [&](std::uint64_t) { primed = true; });
    h.runUntil([&] { return primed; });

    int completions = 0;
    std::set<std::uint64_t> olds;
    for (CoreId c = 1; c <= 4; ++c) {
        // demotable=true requested, but FetchAdd must not be demoted.
        h.sys->l1(c).issueAtomic(ctr, AtomicOp::FetchAdd, 1, 0, true,
                                 [&](std::uint64_t old, bool demoted) {
                                     EXPECT_FALSE(demoted);
                                     olds.insert(old);
                                     ++completions;
                                 },
                                 /*demotable=*/true);
    }
    h.runUntil([&] { return completions == 4; });
    EXPECT_EQ(olds.size(), 4u);
    EXPECT_EQ(h.golden.finalValue(ctr), 9u);
    EXPECT_EQ(h.golden.verify(), "");
}

TEST(Demotion, DemotedRecordsExcludedFromWriteChain)
{
    GoldenMemory g;
    OpRecord w;
    w.kind = OpRecord::Kind::Atomic;
    w.op = AtomicOp::Swap;
    w.addr = 0x100;
    w.operandA = 1;
    w.oldValue = 0;
    w.newValue = 1;
    g.record(w);
    OpRecord d = w;
    d.demoted = true;
    d.oldValue = 1;
    d.newValue = 1;
    g.record(d); // a demoted observation must not advance the chain
    EXPECT_EQ(g.verify(), "");
    EXPECT_EQ(g.finalValue(0x100), 1u);
}

} // namespace
} // namespace inpg
