/**
 * @file
 * iNPG edge cases: barrier-table capacity pass-through, TTL behaviour
 * under live traffic, ack relaying at the home tile, generator-port
 * injection under pressure, and the packet generator's protocol
 * filters.
 */

#include <gtest/gtest.h>

#include "coh/coherent_system.hh"
#include "inpg/big_router.hh"
#include "inpg/packet_generator.hh"
#include "sim/simulator.hh"

namespace inpg {
namespace {

CohMsgPtr
makeLockGetX(Addr addr, CoreId requester)
{
    auto msg = std::make_shared<CoherenceMsg>();
    msg->kind = CohMsgKind::GetX;
    msg->addr = addr;
    msg->requester = requester;
    msg->isLock = true;
    msg->isAtomicOp = true;
    msg->demotable = true;
    msg->toDirectory = true;
    return msg;
}

// ---------------------------------------------------------------------
// PacketGenerator protocol filters (no network needed)
// ---------------------------------------------------------------------

struct GenHarness {
    GenHarness()
    {
        coh.numNodes = 16;
        gen = std::make_unique<PacketGenerator>(5, cfg, coh);
    }

    InpgConfig cfg;
    CohConfig coh;
    std::unique_ptr<PacketGenerator> gen;
};

TEST(PacketGenerator, FirstGetXInstallsLaterGetXStopped)
{
    GenHarness h;
    auto first = makeLockGetX(0x500, 1);
    EXPECT_EQ(h.gen->onGetXArrival(first, 10), nullptr); // no barrier yet
    h.gen->onGetXTransfer(first, 12);                    // installs

    auto second = makeLockGetX(0x500, 2);
    CohMsgPtr inv = h.gen->onGetXArrival(second, 20);
    ASSERT_NE(inv, nullptr);
    EXPECT_EQ(inv->kind, CohMsgKind::Inv);
    EXPECT_EQ(inv->requester, 2);
    EXPECT_EQ(inv->collector, 5); // ack returns to this router
    EXPECT_TRUE(inv->fromBigRouter);
    EXPECT_TRUE(second->earlyInvalidated);
    EXPECT_TRUE(second->fromBigRouter);
}

TEST(PacketGenerator, IgnoresNonLockNonAtomicAndAlreadyStopped)
{
    GenHarness h;
    auto first = makeLockGetX(0x500, 1);
    h.gen->onGetXTransfer(first, 0);

    auto plain = makeLockGetX(0x500, 2);
    plain->isLock = false;
    EXPECT_EQ(h.gen->onGetXArrival(plain, 1), nullptr);

    auto release_store = makeLockGetX(0x500, 3);
    release_store->isAtomicOp = false; // a release store
    EXPECT_EQ(h.gen->onGetXArrival(release_store, 2), nullptr);
    h.gen->onGetXTransfer(release_store, 2); // must not install either
    EXPECT_EQ(h.gen->stats.value("getx_stopped"), 0u);

    auto stopped_elsewhere = makeLockGetX(0x500, 4);
    stopped_elsewhere->earlyInvalidated = true;
    EXPECT_EQ(h.gen->onGetXArrival(stopped_elsewhere, 3), nullptr);
}

TEST(PacketGenerator, AckRelayClosesEiAndRedirectsHome)
{
    GenHarness h;
    auto first = makeLockGetX(0x500, 1);
    h.gen->onGetXTransfer(first, 0);
    auto second = makeLockGetX(0x500, 2);
    ASSERT_NE(h.gen->onGetXArrival(second, 1), nullptr);
    EXPECT_EQ(h.gen->barrierTable().numEis(0x500), 1u);

    auto ack = std::make_shared<CoherenceMsg>();
    ack->kind = CohMsgKind::InvAck;
    ack->addr = 0x500;
    ack->requester = 2;
    ack->fromBigRouter = true;
    NodeId home = h.gen->onInvAckArrival(ack, 30);
    EXPECT_EQ(home, h.coh.homeOf(0x500));
    EXPECT_EQ(h.gen->barrierTable().numEis(0x500), 0u);
    EXPECT_EQ(h.gen->stats.value("acks_relayed"), 1u);

    // A duplicate/stale ack still relays but counts as stale.
    EXPECT_EQ(h.gen->onInvAckArrival(ack, 31), home);
    EXPECT_EQ(h.gen->stats.value("acks_relayed_stale"), 1u);

    // Non-early acks are not the generator's business.
    auto normal = std::make_shared<CoherenceMsg>();
    normal->kind = CohMsgKind::InvAck;
    normal->addr = 0x500;
    EXPECT_EQ(h.gen->onInvAckArrival(normal, 32), INVALID_NODE);
}

TEST(PacketGenerator, EiCapacityLimitsStops)
{
    InpgConfig small;
    small.barrierEntries = 2;
    small.eiEntries = 2;
    CohConfig coh;
    coh.numNodes = 16;
    PacketGenerator gen(0, small, coh);

    auto first = makeLockGetX(0x100, 0);
    gen.onGetXTransfer(first, 0);
    EXPECT_NE(gen.onGetXArrival(makeLockGetX(0x100, 1), 1), nullptr);
    EXPECT_NE(gen.onGetXArrival(makeLockGetX(0x100, 2), 1), nullptr);
    // EI list full: the third competitor passes through unstopped.
    auto third = makeLockGetX(0x100, 3);
    EXPECT_EQ(gen.onGetXArrival(third, 2), nullptr);
    EXPECT_FALSE(third->earlyInvalidated);
}

// ---------------------------------------------------------------------
// Full-system edge cases
// ---------------------------------------------------------------------

struct EdgeHarness {
    explicit EdgeHarness(InpgConfig icfg)
    {
        noc.meshWidth = 4;
        noc.meshHeight = 4;
        icfg.numBigRouters = 16; // every router big
        sys = std::make_unique<CoherentSystem>(
            noc, coh, sim, makeInpgRouterFactory(icfg, coh));
    }

    void
    storm(Addr lock, int rounds)
    {
        const int n = 16;
        std::vector<int> rem(n, rounds);
        int active = n;
        std::function<void(CoreId)> loop = [&](CoreId c) {
            if (rem[static_cast<std::size_t>(c)]-- <= 0) {
                --active;
                return;
            }
            sys->l1(c).issueAtomic(
                lock, AtomicOp::Swap, 1, 0, true,
                [&, c](std::uint64_t old, bool demoted) {
                    if (!demoted && old == 0) {
                        sys->l1(c).issueStore(lock, 0, true,
                                              [&, c](std::uint64_t) {
                                                  loop(c);
                                              });
                    } else {
                        loop(c);
                    }
                },
                true);
        };
        for (CoreId c = 0; c < n; ++c)
            loop(c);
        while (active > 0) {
            sim.step();
            ASSERT_LT(sim.now(), 3000000u) << "storm hung";
        }
    }

    NocConfig noc;
    CohConfig coh;
    Simulator sim;
    std::unique_ptr<CoherentSystem> sys;
};

TEST(InpgEdge, TinyBarrierTableStillCorrect)
{
    InpgConfig icfg;
    icfg.barrierEntries = 1;
    icfg.eiEntries = 1;
    EdgeHarness h(icfg);
    // Two locks exceed the single barrier: pass-through must engage.
    Addr l0 = h.coh.lineHomedAt(3);
    Addr l1_addr = h.coh.lineHomedAt(12);
    h.storm(l0, 3);
    h.storm(l1_addr, 3);
    std::uint64_t full = 0;
    for (NodeId n = 0; n < 16; ++n) {
        auto *br = dynamic_cast<BigRouter *>(&h.sys->network().router(n));
        ASSERT_NE(br, nullptr);
        full += br->generator().barrierTable().stats.value(
            "barrier_table_full");
    }
    // Some router must have hit the capacity path during the storms.
    EXPECT_GT(full, 0u);
}

TEST(InpgEdge, ShortTtlExpiresBarriersBetweenBursts)
{
    InpgConfig icfg;
    icfg.barrierTtl = 8;
    EdgeHarness h(icfg);
    Addr lock = h.coh.lineHomedAt(5);
    h.storm(lock, 2);
    // Let everything drain well past the TTL.
    h.sim.run(1000);
    for (NodeId n = 0; n < 16; ++n) {
        auto *br = dynamic_cast<BigRouter *>(&h.sys->network().router(n));
        br->generator().maintain(h.sim.now());
        EXPECT_EQ(br->generator().barrierTable().numBarriers(), 0u)
            << "node " << n;
    }
}

TEST(InpgEdge, LockHomedAtBigRouterTile)
{
    // The ack-relay rewrite must also work when the big router IS the
    // home tile (dst == home after rewrite -> local ejection).
    InpgConfig icfg;
    EdgeHarness h(icfg);
    Addr lock = h.coh.lineHomedAt(0);
    h.storm(lock, 4);
    std::uint64_t early = 0;
    for (NodeId n = 0; n < 16; ++n) {
        auto *br = dynamic_cast<BigRouter *>(&h.sys->network().router(n));
        early += br->generator().stats.value("early_invs_generated");
    }
    EXPECT_GT(early, 0u);
}

} // namespace
} // namespace inpg
