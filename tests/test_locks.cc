/**
 * @file
 * Lock primitive tests: mutual exclusion, progress, fairness and
 * sleep/wakeup behaviour for all five primitives of the paper.
 */

#include <gtest/gtest.h>

#include "harness/system.hh"
#include "sync/qsl_lock.hh"

namespace inpg {
namespace {

struct LockHarness {
    explicit LockHarness(LockKind kind, int w = 4, int h = 4,
                         Mechanism mech = Mechanism::Original)
    {
        cfg.noc.meshWidth = w;
        cfg.noc.meshHeight = h;
        cfg.lockKind = kind;
        cfg.mechanism = mech;
        cfg.finalize();
        system = std::make_unique<System>(cfg);
        lock = system->locks().createLock(kind, cfg.numCores(), 5);
    }

    /** Run `rounds` of acquire -> hold `hold_cycles` -> release per
     *  thread; returns the global acquisition order. */
    std::vector<ThreadId>
    contend(int rounds, Cycle hold_cycles)
    {
        std::vector<ThreadId> order;
        const int n = cfg.numCores();
        std::vector<int> remaining(static_cast<std::size_t>(n), rounds);
        int active = n;
        std::function<void(ThreadId)> loop = [&](ThreadId t) {
            if (remaining[static_cast<std::size_t>(t)]-- <= 0) {
                --active;
                return;
            }
            lock->acquire(t, [&, t] {
                order.push_back(t);
                system->sim().scheduleIn(hold_cycles, [&, t] {
                    lock->release(t, [&, t] { loop(t); });
                });
            });
        };
        for (ThreadId t = 0; t < n; ++t)
            loop(t);
        while (active > 0) {
            system->sim().step();
            EXPECT_LE(lock->holders(), 1);
            if (system->sim().now() > 30000000) {
                ADD_FAILURE() << "lock protocol hung";
                break;
            }
        }
        return order;
    }

    SystemConfig cfg;
    std::unique_ptr<System> system;
    LockPrimitive *lock = nullptr;
};

class LockKindTest : public ::testing::TestWithParam<LockKind>
{};

TEST_P(LockKindTest, AllThreadsCompleteAllRounds)
{
    LockHarness h(GetParam());
    const int rounds = 4;
    auto order = h.contend(rounds, 50);
    EXPECT_EQ(order.size(),
              static_cast<std::size_t>(h.cfg.numCores() * rounds));
    EXPECT_EQ(h.lock->stats.value("acquisitions"),
              static_cast<std::uint64_t>(h.cfg.numCores() * rounds));
    EXPECT_EQ(h.lock->stats.value("acquisitions"),
              h.lock->stats.value("releases"));
    // Every thread appears exactly `rounds` times.
    std::vector<int> counts(static_cast<std::size_t>(h.cfg.numCores()),
                            0);
    for (ThreadId t : order)
        ++counts[static_cast<std::size_t>(t)];
    for (int c : counts)
        EXPECT_EQ(c, rounds);
}

TEST_P(LockKindTest, UncontendedAcquireIsFast)
{
    LockHarness h(GetParam());
    bool done = false;
    Cycle start = h.system->sim().now();
    h.lock->acquire(0, [&] { done = true; });
    h.system->runUntil([&] { return done; }, 10000);
    Cycle latency = h.system->sim().now() - start;
    // One cold miss round trip, no competition: well under 1000 cycles.
    EXPECT_LT(latency, 1000u);
    bool released = false;
    h.lock->release(0, [&] { released = true; });
    h.system->runUntil([&] { return released; }, 10000);
}

TEST_P(LockKindTest, WorksWithBigRoutersDeployed)
{
    LockHarness h(GetParam(), 4, 4, Mechanism::Inpg);
    auto order = h.contend(3, 30);
    EXPECT_EQ(order.size(),
              static_cast<std::size_t>(h.cfg.numCores() * 3));
}

INSTANTIATE_TEST_SUITE_P(AllKinds, LockKindTest,
                         ::testing::Values(LockKind::Tas,
                                           LockKind::Ticket,
                                           LockKind::Abql, LockKind::Mcs,
                                           LockKind::Qsl),
                         [](const auto &info) {
                             return lockKindName(info.param);
                         });

TEST(TicketLock, GrantsInFifoOrder)
{
    LockHarness h(LockKind::Ticket);
    // Stagger the arrival of threads so ticket order is deterministic:
    // thread t arrives at cycle 400 * t (well beyond the fetch-add
    // round trip, so tickets are taken in arrival order).
    const int n = 8;
    std::vector<ThreadId> order;
    int held = 0;
    for (ThreadId t = 0; t < n; ++t) {
        h.system->sim().events().schedule(
            static_cast<Cycle>(400) * static_cast<Cycle>(t), [&, t] {
                h.lock->acquire(t, [&, t] {
                    order.push_back(t);
                    h.system->sim().scheduleIn(2000, [&, t] {
                        h.lock->release(t, [&] { ++held; });
                    });
                });
            });
    }
    h.system->runUntil([&] { return held == n; }, 10000000);
    ASSERT_EQ(order.size(), static_cast<std::size_t>(n));
    for (ThreadId t = 0; t < n; ++t)
        EXPECT_EQ(order[static_cast<std::size_t>(t)], t)
            << "FIFO violated at position " << t;
}

TEST(AbqlLock, SlotsWrapAroundAcrossRounds)
{
    LockHarness h(LockKind::Abql);
    auto order = h.contend(5, 20);
    EXPECT_EQ(order.size(),
              static_cast<std::size_t>(h.cfg.numCores() * 5));
}

TEST(QslLock, ContentionCausesSleepsAndAllWake)
{
    LockHarness h(LockKind::Qsl);
    // Long hold times force spinners past the 128-retry budget.
    auto order = h.contend(2, 4000);
    auto *qsl = dynamic_cast<QslLock *>(h.lock);
    ASSERT_NE(qsl, nullptr);
    EXPECT_GT(h.lock->stats.value("sleeps"), 0u);
    EXPECT_EQ(qsl->sleepers(), 0u) << "thread left asleep";
    EXPECT_EQ(h.lock->stats.value("wakeups") +
                  h.lock->stats.value("sleep_aborted"),
              h.lock->stats.value("sleeps"));
}

TEST(QslLock, NoSleepsWithoutContention)
{
    LockHarness h(LockKind::Qsl);
    int done = 0;
    // Strictly serialized accesses: never more than one competitor.
    std::function<void(ThreadId)> next = [&](ThreadId t) {
        if (t >= 8)
            return;
        h.lock->acquire(t, [&, t] {
            h.lock->release(t, [&, t] {
                ++done;
                next(t + 1);
            });
        });
    };
    next(0);
    h.system->runUntil([&] { return done == 8; }, 1000000);
    EXPECT_EQ(h.lock->stats.value("sleeps"), 0u);
}

TEST(Ocor, PrioritiesAreStampedUnderOcorMechanism)
{
    LockHarness h(LockKind::Qsl, 4, 4, Mechanism::Ocor);
    EXPECT_TRUE(h.cfg.sync.ocorEnabled);
    EXPECT_EQ(h.cfg.noc.switchPolicy, SwitchPolicy::Priority);
    auto order = h.contend(2, 1000);
    EXPECT_EQ(order.size(),
              static_cast<std::size_t>(h.cfg.numCores() * 2));
}

TEST(Mechanisms, DeploymentMatchesMechanism)
{
    for (Mechanism m : ALL_MECHANISMS) {
        SystemConfig cfg;
        cfg.noc.meshWidth = 4;
        cfg.noc.meshHeight = 4;
        cfg.inpg.numBigRouters = 8;
        cfg.mechanism = m;
        cfg.finalize();
        System sys(cfg);
        EXPECT_EQ(sys.deployedBigRouters(), usesInpg(m) ? 8 : 0)
            << mechanismName(m);
    }
}

} // namespace
} // namespace inpg
