/**
 * @file
 * Verifier tests: feed deliberately broken transition tables through
 * each static check and assert the precise diagnostic fires, then
 * prove the three production tables verify clean (so a seeded table
 * bug fails plain ctest, not just the standalone tool).
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "coh/protocol_tables.hh"
#include "coh/protocol_verify.hh"

namespace inpg {
namespace {

// A minimal 2-state / 2-event FSM to seed bugs into.
enum class TS { A, B };
enum class TE { X, Y };

const char *
tsName(int s)
{
    return s == 0 ? "A" : "B";
}

const char *
teName(int e)
{
    return e == 0 ? "X" : "Y";
}

int
teVnetRequest(int)
{
    return VNET_REQUEST;
}

using TinyTable = TransitionTable<TS, TE>;

bool
hasDiag(const std::vector<ProtoDiagnostic> &diags, const char *check,
        const char *needle)
{
    for (const auto &d : diags)
        if (d.check == check &&
            d.message.find(needle) != std::string::npos)
            return true;
    return false;
}

std::string
joinDiags(const std::vector<ProtoDiagnostic> &diags)
{
    std::string out;
    for (const auto &d : diags)
        out += d.toString() + "\n";
    return out;
}

TEST(ProtocolCheck, CoverageFlagsUnhandledPair)
{
    TinyTable t("hole", 2, 2, 0, tsName, teName, teVnetRequest,
                {
                    {0, 0, 0, {0}, {}, {}, nullptr},
                    {0, 1, 0, {1}, {}, {}, nullptr},
                    {1, 0, 0, {0}, {}, {}, nullptr},
                    // (B, Y) intentionally missing
                });
    auto diags = verifyCoverage(t);
    EXPECT_TRUE(hasDiag(diags, "coverage", "unhandled transition (B, Y)"))
        << joinDiags(diags);
    EXPECT_EQ(diags.size(), 1u) << joinDiags(diags);
}

TEST(ProtocolCheck, CoverageFlagsAmbiguousPair)
{
    TinyTable t("dup", 2, 2, 0, tsName, teName, teVnetRequest,
                {
                    {0, 0, 0, {0}, {}, {}, nullptr},
                    {0, 0, 1, {1}, {}, {}, nullptr}, // duplicate (A, X)
                    {0, 1, 0, {0}, {}, {}, nullptr},
                    {1, 0, 0, {0}, {}, {}, nullptr},
                    {1, 1, 0, {0}, {}, {}, nullptr},
                });
    auto diags = verifyCoverage(t);
    EXPECT_TRUE(
        hasDiag(diags, "coverage", "ambiguous transition (A, X)"))
        << joinDiags(diags);
}

TEST(ProtocolCheck, CoverageAcceptsExplicitIllegalEntries)
{
    TinyTable t("tot", 2, 2, 0, tsName, teName, teVnetRequest,
                {
                    {0, 0, 0, {0, 1}, {}, {}, nullptr},
                    {0, 1, PROTO_ILLEGAL, {}, {}, {}, "cannot happen"},
                    {1, 0, 0, {0}, {}, {}, nullptr},
                    {1, 1, PROTO_ILLEGAL, {}, {}, {}, "cannot happen"},
                });
    EXPECT_TRUE(verifyCoverage(t).empty());
}

TEST(ProtocolCheck, VnetGraphFlagsSameClassEmission)
{
    // A request-class consumer re-injecting request traffic without a
    // relay annotation is a 0 -> 0 self-dependency (potential request-
    // network deadlock).
    TinyTable t("selfdep", 2, 2, 0, tsName, teName, teVnetRequest,
                {
                    {0, 0, 0, {0}, {{CohMsgKind::GetX, false}}, {},
                     nullptr},
                    {0, 1, 0, {0}, {}, {}, nullptr},
                    {1, 0, 0, {0}, {}, {}, nullptr},
                    {1, 1, 0, {0}, {}, {}, nullptr},
                });
    auto diags = verifyVnetGraph({&t});
    EXPECT_TRUE(hasDiag(diags, "vnet-graph", "self-dependency"))
        << joinDiags(diags);
}

TEST(ProtocolCheck, VnetGraphFlagsRelayCrossingClasses)
{
    // A "relay" must stay on the consuming vnet; Data (response class)
    // emitted from a request-class consumer is a real dependency.
    TinyTable t("badrelay", 2, 2, 0, tsName, teName, teVnetRequest,
                {
                    {0, 0, 0, {0}, {{CohMsgKind::Data, true}}, {},
                     nullptr},
                    {0, 1, 0, {0}, {}, {}, nullptr},
                    {1, 0, 0, {0}, {}, {}, nullptr},
                    {1, 1, 0, {0}, {}, {}, nullptr},
                });
    auto diags = verifyVnetGraph({&t});
    EXPECT_TRUE(hasDiag(diags, "vnet-graph", "crosses"))
        << joinDiags(diags);
}

TEST(ProtocolCheck, VnetGraphFlagsCrossClassCycle)
{
    // Two tables jointly forming request -> response -> request.
    auto vnetResponse = [](int) { return VNET_RESPONSE; };
    TinyTable a("reqside", 2, 2, 0, tsName, teName, teVnetRequest,
                {
                    {0, 0, 0, {0}, {{CohMsgKind::Data, false}}, {},
                     nullptr},
                    {0, 1, 0, {0}, {}, {}, nullptr},
                    {1, 0, 0, {0}, {}, {}, nullptr},
                    {1, 1, 0, {0}, {}, {}, nullptr},
                });
    TinyTable b("respside", 2, 2, 0, tsName, teName, vnetResponse,
                {
                    {0, 0, 0, {0}, {{CohMsgKind::GetS, false}}, {},
                     nullptr},
                    {0, 1, 0, {0}, {}, {}, nullptr},
                    {1, 0, 0, {0}, {}, {}, nullptr},
                    {1, 1, 0, {0}, {}, {}, nullptr},
                });
    auto diags = verifyVnetGraph({&a, &b});
    EXPECT_TRUE(hasDiag(diags, "vnet-graph", "dependency cycle"))
        << joinDiags(diags);
    // The report must carry witnesses naming the offending tables.
    EXPECT_TRUE(hasDiag(diags, "vnet-graph", "reqside"))
        << joinDiags(diags);
    EXPECT_TRUE(hasDiag(diags, "vnet-graph", "respside"))
        << joinDiags(diags);
}

TEST(ProtocolCheck, LcoHooksFlagUnknownName)
{
    TinyTable t("hook", 2, 2, 0, tsName, teName, teVnetRequest,
                {
                    {0, 0, 0, {0}, {}, {"notAHook"}, nullptr},
                    {0, 1, 0, {0}, {}, {}, nullptr},
                    {1, 0, 0, {0}, {}, {}, nullptr},
                    {1, 1, 0, {0}, {}, {}, nullptr},
                });
    auto diags = verifyLcoHooks({&t});
    EXPECT_TRUE(
        hasDiag(diags, "lco-hooks", "unknown LCO hook 'notAHook'"))
        << joinDiags(diags);
}

TEST(ProtocolCheck, LcoHooksFlagUncoveredLeg)
{
    // A table set that never drives `dirServed` leaves the dirService
    // attribution leg unclosable.
    TinyTable t("legs", 2, 2, 0, tsName, teName, teVnetRequest,
                {
                    {0, 0, 0, {0}, {}, {"opIssued"}, nullptr},
                    {0, 1, 0, {0}, {}, {}, nullptr},
                    {1, 0, 0, {0}, {}, {}, nullptr},
                    {1, 1, 0, {0}, {}, {}, nullptr},
                });
    auto diags = verifyLcoHooks({&t});
    EXPECT_TRUE(hasDiag(diags, "lco-hooks",
                        "LCO hook 'dirServed' is driven by no "
                        "transition"))
        << joinDiags(diags);
}

TEST(ProtocolCheck, ReachabilityFlagsDeadState)
{
    // Every transition stays in A; state B is declared but dead.
    TinyTable t("dead", 2, 2, 0, tsName, teName, teVnetRequest,
                {
                    {0, 0, 0, {0}, {}, {}, nullptr},
                    {0, 1, 0, {0}, {}, {}, nullptr},
                    {1, 0, 0, {0}, {}, {}, nullptr},
                    {1, 1, 0, {0}, {}, {}, nullptr},
                });
    auto diags = verifyReachability(t);
    EXPECT_TRUE(hasDiag(diags, "reachability", "dead state B"))
        << joinDiags(diags);
}

TEST(ProtocolCheck, RequirePanicsOnUnhandledAndIllegalPairs)
{
    TinyTable t("req", 2, 2, 0, tsName, teName, teVnetRequest,
                {
                    {0, 0, 0, {0}, {}, {}, nullptr},
                    {0, 1, PROTO_ILLEGAL, {}, {}, {}, "by design"},
                });
    EXPECT_EQ(&t.require(TS::A, TE::X), t.find(TS::A, TE::X));
    EXPECT_DEATH(t.require(TS::A, TE::Y),
                 "illegal transition \\(A, Y\\): by design");
    EXPECT_DEATH(t.require(TS::B, TE::X), "unhandled transition \\(B, X\\)");
}

// ---------------------------------------------------------------------
// Production tables: these assertions are what makes a seeded bug in
// protocol_tables.cc fail plain `ctest` without any extra tooling.
// ---------------------------------------------------------------------

TEST(ProtocolCheck, ProductionTablesVerifyClean)
{
    auto diags = verifyProductionProtocol();
    EXPECT_TRUE(diags.empty()) << joinDiags(diags);
}

TEST(ProtocolCheck, ProductionTablesCoverFullPairSpace)
{
    for (int i = 0; i < PROTO_NUM_TABLES; ++i) {
        const ProtoTableBase &t = protocolTable(i);
        for (int s = 0; s < t.numStates(); ++s)
            for (int e = 0; e < t.numEvents(); ++e)
                EXPECT_NE(t.find(s, e), nullptr)
                    << t.name() << " (" << t.stateName(s) << ", "
                    << t.eventName(e) << ")";
        EXPECT_TRUE(t.duplicates().empty()) << t.name();
    }
}

TEST(ProtocolCheck, DirectoryTableEncodesDemotionPolicy)
{
    // Spot-check the rows the iNPG mechanism hinges on (paper Fig. 4):
    // a demotable GetX against a foreign owner demotes via the owner
    // with a FwdGetS, never a FwdGetX.
    const auto &tr = directoryProtocolTable().require(
        static_cast<int>(DirState::Owned),
        static_cast<int>(DirEvent::GetXDemotable));
    EXPECT_EQ(static_cast<DirAction>(tr.action),
              DirAction::DemoteViaOwner);
    ASSERT_EQ(tr.emits.size(), 1u);
    EXPECT_EQ(tr.emits[0].kind, CohMsgKind::FwdGetS);
}

TEST(ProtocolCheck, BigRouterTableStopsOnlyUnderBarrier)
{
    const auto &pass = bigRouterProtocolTable().require(
        static_cast<int>(BrState::NoBarrier),
        static_cast<int>(BrEvent::LockGetXArrival));
    EXPECT_EQ(static_cast<BrAction>(pass.action), BrAction::PassThrough);
    EXPECT_TRUE(pass.emits.empty());

    const auto &stop = bigRouterProtocolTable().require(
        static_cast<int>(BrState::BarrierArmed),
        static_cast<int>(BrEvent::LockGetXArrival));
    EXPECT_EQ(static_cast<BrAction>(stop.action),
              BrAction::StopAndInvalidate);
    ASSERT_EQ(stop.emits.size(), 1u);
    EXPECT_EQ(stop.emits[0].kind, CohMsgKind::Inv);
}

} // namespace
} // namespace inpg
