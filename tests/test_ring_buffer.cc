/**
 * @file
 * Unit tests for the pow2 ring buffers behind the NoC hot path:
 * RingBuffer FIFO order across wraps and growth, and VcStateArray's
 * pooled per-VC rings with their occupancy/mask invariants.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "noc/flit_pool.hh"
#include "noc/packet.hh"
#include "noc/ring_buffer.hh"
#include "noc/vc_state.hh"

namespace inpg {
namespace {

// ---------------------------------------------------------------------
// RingBuffer
// ---------------------------------------------------------------------

TEST(RingBuffer, StartsEmptyAtInitialCapacity)
{
    RingBuffer<int, 4> rb;
    EXPECT_TRUE(rb.empty());
    EXPECT_EQ(rb.size(), 0u);
    EXPECT_EQ(rb.capacity(), 4u);
}

TEST(RingBuffer, FifoOrderSurvivesWraparound)
{
    RingBuffer<int, 4> rb;
    // Offset the head so pushes wrap the physical array, then verify
    // logical FIFO order is untouched.
    for (int i = 0; i < 3; ++i)
        rb.push_back(i);
    EXPECT_EQ(rb.pop_front(), 0);
    EXPECT_EQ(rb.pop_front(), 1);
    for (int i = 3; i < 7; ++i)
        rb.push_back(i); // wraps the physical end, then grows on the 5th
    EXPECT_EQ(rb.capacity(), 8u);
    std::vector<int> drained;
    while (!rb.empty())
        drained.push_back(rb.pop_front());
    EXPECT_EQ(drained, (std::vector<int>{2, 3, 4, 5, 6}));
}

TEST(RingBuffer, GrowthPreservesOrderAndDoublesCapacity)
{
    RingBuffer<int, 2> rb;
    for (int i = 0; i < 9; ++i)
        rb.push_back(i);
    EXPECT_EQ(rb.capacity(), 16u);
    EXPECT_EQ(rb.size(), 9u);
    for (int i = 0; i < 9; ++i)
        EXPECT_EQ(rb.pop_front(), i);
    EXPECT_TRUE(rb.empty());
}

TEST(RingBuffer, GrowthFromWrappedStateRelinearizes)
{
    RingBuffer<int, 4> rb;
    for (int i = 0; i < 4; ++i)
        rb.push_back(i);
    rb.pop_front();
    rb.pop_front();
    rb.push_back(4);
    rb.push_back(5); // buffer full and physically wrapped
    rb.push_back(6); // forces growth mid-wrap
    EXPECT_EQ(rb.capacity(), 8u);
    for (int want = 2; want <= 6; ++want)
        EXPECT_EQ(rb.pop_front(), want);
}

TEST(RingBuffer, WarmBufferNeverReallocates)
{
    RingBuffer<int, 4> rb;
    for (int i = 0; i < 4; ++i)
        rb.push_back(i);
    const std::size_t warm_cap = rb.capacity();
    // Steady state: occupancy never exceeds the warm capacity again.
    for (int round = 0; round < 1000; ++round) {
        rb.pop_front();
        rb.push_back(round);
        ASSERT_EQ(rb.capacity(), warm_cap);
    }
}

TEST(RingBuffer, ClearResetsAndDropsOwnedElements)
{
    RingBuffer<std::string, 2> rb;
    rb.push_back("a");
    rb.push_back("b");
    rb.push_back("c");
    rb.clear();
    EXPECT_TRUE(rb.empty());
    rb.push_back("d");
    EXPECT_EQ(rb.front(), "d");
    EXPECT_EQ(rb.pop_front(), "d");
}

// ---------------------------------------------------------------------
// VcStateArray pooled rings
// ---------------------------------------------------------------------

FlitPtr
testFlit(FlitType type, VcId vc)
{
    PacketPtr pkt = std::make_shared<Packet>(/*id=*/0, /*src=*/0,
                                             /*dst=*/1, /*vnet=*/0,
                                             /*num_flits=*/1);
    FlitPtr f = makeFlit(std::move(pkt), type, 0);
    f->vc = vc;
    return f;
}

TEST(VcStateArray, FitsGuardsTheMaskBudget)
{
    EXPECT_TRUE(VcStateArray::fits(6, 8));  // 48 slots: standard shape
    EXPECT_TRUE(VcStateArray::fits(8, 8));  // exactly 64
    EXPECT_FALSE(VcStateArray::fits(9, 8)); // 72 > 64: reference path
}

TEST(VcStateArray, ReceiveAndPopKeepOccupancyAndMasksInSync)
{
    VcStateArray a(/*ports=*/2, /*vcs=*/2, /*depth=*/3);
    const std::size_t s = a.slot(1, 1);
    EXPECT_EQ(a.totalOccupancy(), 0u);
    EXPECT_EQ(a.pendingMask, 0u);

    a.receiveFlit(1, testFlit(FlitType::Head, 1), /*now=*/5);
    EXPECT_EQ(a.totalOccupancy(), 1u);
    EXPECT_EQ(a.vcOccupancy(s), 1u);
    EXPECT_EQ(a.portOccupancy(1), 1u);
    EXPECT_EQ(a.portOccupancy(0), 0u);
    // An idle VC holding a head flit is a pending (RC) candidate.
    EXPECT_EQ(a.pendingMask, 1ull << s);
    EXPECT_EQ(a.front(s)->bufferedAt, 5u);

    a.receiveFlit(1, testFlit(FlitType::Body, 1), 6);
    a.receiveFlit(1, testFlit(FlitType::Tail, 1), 7);
    EXPECT_EQ(a.vcOccupancy(s), 3u);

    FlitPtr popped = a.popFlit(s);
    EXPECT_EQ(popped->type, FlitType::Head);
    EXPECT_EQ(a.vcOccupancy(s), 2u);
    EXPECT_EQ(a.totalOccupancy(), 2u);
    a.popFlit(s);
    a.popFlit(s);
    EXPECT_EQ(a.totalOccupancy(), 0u);
    EXPECT_EQ(a.pendingMask, 0u);
    EXPECT_FALSE(a.hasFlit(s));
}

TEST(VcStateArray, PerVcRingWrapsWithinPooledArena)
{
    // depth 3 rounds up to a 4-slot ring; cycling depth-many flits
    // through repeatedly walks the ring past its physical end.
    VcStateArray a(2, 2, 3);
    const std::size_t s = a.slot(0, 1);
    int seq = 0;
    for (int round = 0; round < 8; ++round) {
        for (int k = 0; k < 3; ++k) {
            FlitPtr f =
                testFlit(k == 0 ? FlitType::Head
                                : (k == 2 ? FlitType::Tail
                                          : FlitType::Body),
                         1);
            f->seq = seq++;
            a.receiveFlit(0, std::move(f), 10 + round);
        }
        int expect = seq - 3;
        while (a.hasFlit(s))
            EXPECT_EQ(a.popFlit(s)->seq, expect++);
        EXPECT_EQ(expect, seq);
    }
    EXPECT_EQ(a.totalOccupancy(), 0u);
}

TEST(VcStateArray, MaskLifecycleFollowsVcStates)
{
    VcStateArray a(2, 2, 3);
    const std::size_t s = a.slot(0, 0);
    a.receiveFlit(0, testFlit(FlitType::HeadTail, 0), 1);
    EXPECT_EQ(a.vaCandidates(0), 1u);
    EXPECT_EQ(a.saCandidates(0), 0u);

    // RC: Idle -> WaitVc moves the slot from pending to wait.
    a.state[s] = VcStateArray::WaitVc;
    a.refreshMask(s);
    EXPECT_EQ(a.pendingMask, 0u);
    EXPECT_EQ(a.waitMask, 1ull << s);
    EXPECT_EQ(a.vaCandidates(0), 1u);

    // VA: WaitVc -> Active makes it a switch-allocation candidate.
    a.state[s] = VcStateArray::Active;
    a.refreshMask(s);
    EXPECT_EQ(a.waitMask, 0u);
    EXPECT_EQ(a.activeMask, 1ull << s);
    EXPECT_EQ(a.vaCandidates(0), 0u);
    EXPECT_EQ(a.saCandidates(0), 1u);

    // ST of the tail: an empty Active VC is no candidate at all.
    a.popFlit(s);
    EXPECT_EQ(a.activeMask, 0u);
    a.state[s] = VcStateArray::Idle;
    a.refreshMask(s);
    EXPECT_EQ(a.vaMask(), 0u);
}

} // namespace
} // namespace inpg
