/**
 * @file
 * Live-diagnosis layer tests: flight-recorder ring semantics, the
 * bounded timeseries sampler, watchdog progress/trip logic, the
 * seeded-hang structured report, fingerprint neutrality of the
 * observers, and the zero-cost off mode.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <tuple>

#include "common/config.hh"
#include "harness/experiment.hh"
#include "harness/system.hh"
#include "telemetry/flight_recorder.hh"
#include "telemetry/timeseries.hh"
#include "telemetry/watchdog.hh"
#include "workload/benchmark_profile.hh"
#include "workload/workload.hh"

namespace inpg {
namespace {

// ---------------------------------------------------------------------
// Flight recorder
// ---------------------------------------------------------------------

TEST(FlightRecorder, RingRetainsNewestAndCountsWrap)
{
    FlightRecorder rec(/*capacity=*/6); // rounds up to 8
    EXPECT_EQ(rec.capacity(), 8u);
    for (std::uint64_t i = 0; i < 20; ++i)
        rec.record(FrKind::NiInject, /*now=*/i, /*node=*/1, /*addr=*/i);
    EXPECT_EQ(rec.recordedTotal(), 20u);
    EXPECT_EQ(rec.retained(), 8u);
    EXPECT_EQ(rec.wrapped(), 12u);

    const std::string text = rec.toJson().dump();
    // Newest 8 events (cycles 12..19) retained, oldest first; cycle 11
    // was overwritten by the wrap.
    EXPECT_EQ(text.find("\"cycle\":11,"), std::string::npos);
    const auto oldest = text.find("\"cycle\":12,");
    const auto newest = text.find("\"cycle\":19,");
    ASSERT_NE(oldest, std::string::npos);
    ASSERT_NE(newest, std::string::npos);
    EXPECT_LT(oldest, newest);
}

TEST(FlightRecorder, KindNamesAreStable)
{
    EXPECT_STREQ(frKindName(FrKind::ProtoDispatch), "proto");
    EXPECT_STREQ(frKindName(FrKind::MsgDrop), "drop");
    EXPECT_STREQ(frKindName(FrKind::AckRelay), "ack-relay");
}

// ---------------------------------------------------------------------
// Timeseries sampler
// ---------------------------------------------------------------------

TEST(Timeseries, CounterDeltasGaugeLevelsAndBoundedRows)
{
    std::uint64_t ctr = 0;
    std::uint64_t level = 0;
    TimeseriesSampler ts(/*epoch_len=*/10, /*max_rows=*/4);
    ts.addCounter("flits", &ctr);
    ts.addGauge("occ", [&] { return level; });
    EXPECT_EQ(ts.numColumns(), 2u);

    // 10 epoch boundaries crossed; only 4 rows may be stored.
    for (Cycle c = 0; c < 100; ++c) {
        ctr += 2;
        level = c;
        ts.onCycle(c);
    }
    EXPECT_EQ(ts.rows(), 4u);
    EXPECT_EQ(ts.droppedRows(), 6u);

    const std::string json = ts.toJson().dump();
    EXPECT_NE(json.find("\"epoch\":10"), std::string::npos);
    EXPECT_NE(json.find("\"dropped_rows\":6"), std::string::npos);
    EXPECT_NE(json.find("\"flits\""), std::string::npos);

    const std::string csv = ts.toCsv();
    EXPECT_EQ(csv.rfind("cycle,flits,occ\n", 0), 0u);
    // A full inter-row epoch advances the counter by 2 per cycle.
    EXPECT_NE(csv.find(",20,"), std::string::npos);
}

TEST(Timeseries, FastForwardSkipsContentlessEpochs)
{
    std::uint64_t ctr = 0;
    TimeseriesSampler ts(/*epoch_len=*/10);
    ts.addCounter("c", &ctr);
    ts.onCycle(0);          // first row; next boundary at 10
    ts.onFastForward(1000); // idle jump over 99 boundaries
    ts.onCycle(1000);       // landing cycle samples immediately
    EXPECT_EQ(ts.rows(), 2u);
    EXPECT_EQ(ts.droppedRows(), 0u);
}

TEST(Timeseries, WriteFilePicksFormatByExtension)
{
    std::uint64_t ctr = 0;
    TimeseriesSampler ts(/*epoch_len=*/5);
    ts.addCounter("c", &ctr);
    ts.onCycle(0);
    const std::string path =
        ::testing::TempDir() + "inpg_test_timeseries.csv";
    ASSERT_TRUE(ts.writeFile(path));
    std::ifstream in(path);
    std::string first;
    std::getline(in, first);
    in.close();
    std::remove(path.c_str());
    EXPECT_EQ(first, "cycle,c");
}

// ---------------------------------------------------------------------
// Progress watchdog
// ---------------------------------------------------------------------

TEST(Watchdog, TripsAfterWindowWithoutProgressOnly)
{
    std::uint64_t progress = 0;
    ProgressWatchdog wd(/*no_progress_window=*/80); // checks every 10
    wd.watchCounter(&progress);
    Cycle tripped_at = 0;
    std::string reason;
    wd.setOnTrip([&](Cycle at, const char *r) {
        tripped_at = at;
        reason = r;
        throw SimHangError("trip", "{}");
    });

    // Progress every 40 executed cycles: stays well inside the window.
    Cycle now = 0;
    for (; now < 400; ++now) {
        if (now % 40 == 0)
            ++progress;
        wd.onCycle(now);
    }
    EXPECT_EQ(wd.trips(), 0u);
    EXPECT_GT(wd.polls(), 0u);

    // Stall: the trip must land within window + one check period.
    EXPECT_THROW(
        {
            for (; now < 600; ++now)
                wd.onCycle(now);
        },
        SimHangError);
    EXPECT_EQ(wd.trips(), 1u);
    EXPECT_EQ(reason, "no-progress");
    EXPECT_GE(tripped_at, 400u);
    EXPECT_LE(tripped_at, 400u + 80u + 10u);
}

TEST(Watchdog, StructuralDeadlockTripsImmediately)
{
    std::uint64_t progress = 0;
    ProgressWatchdog wd(/*no_progress_window=*/1000000);
    wd.watchCounter(&progress);
    std::string reason;
    wd.setOnTrip([&](Cycle, const char *r) {
        reason = r;
        throw SimHangError("trip", "{}");
    });
    EXPECT_THROW(wd.tripDeadlock(42), SimHangError);
    EXPECT_EQ(reason, "deadlock");
}

// ---------------------------------------------------------------------
// Seeded hang: drop_dir_response deadlocks the protocol; the watchdog
// must turn it into a structured report instead of a silent timeout.
// ---------------------------------------------------------------------

TEST(Watchdog, SeededHangProducesStructuredReport)
{
    SystemConfig cfg;
    cfg.noc.meshWidth = 4;
    cfg.noc.meshHeight = 4;
    cfg.lockKind = LockKind::Tas;
    cfg.coh.dropDirResponseNth = 1; // first directory send vanishes
    cfg.telemetry.watchdogWindow = 50000;
    cfg.telemetry.recorder = true;
    cfg.telemetry.packets = true;
    cfg.finalize();
    System system(cfg);

    Workload::Params wp;
    wp.profile = benchmarkByName("freq");
    wp.threads = cfg.numCores();
    wp.csScale = 0.01;
    wp.lockKind = cfg.lockKind;
    Workload w(wp, system.coherent(), system.locks(), system.sim());
    w.start();
    try {
        system.runUntil([&] { return w.done(); }, 5000000);
        FAIL() << "seeded hang did not trip the watchdog";
    } catch (const SimHangError &e) {
        EXPECT_NE(std::string(e.what()).find("watchdog tripped"),
                  std::string::npos);
        const std::string &rep = e.reportJson();
        for (const char *key :
             {"\"inpg-hang-report\"", "\"reason\"", "\"event_queue\"",
              "\"directories\"", "\"l1s\"", "\"flight_recorder\"",
              "\"packets_in_flight\"", "\"watchdog\""})
            EXPECT_NE(rep.find(key), std::string::npos)
                << "hang report missing " << key;
    }
}

// ---------------------------------------------------------------------
// Observer neutrality and off-mode cost
// ---------------------------------------------------------------------

TEST(Diagnosis, EnablingObserversNeverChangesSimulatedResults)
{
    auto fingerprint = [](bool diag_on) {
        SystemConfig cfg;
        cfg.noc.meshWidth = 4;
        cfg.noc.meshHeight = 4;
        cfg.lockKind = LockKind::Tas;
        cfg.mechanism = Mechanism::Inpg;
        if (diag_on) {
            cfg.telemetry.recorder = true;
            cfg.telemetry.timeseriesEpoch = 256;
            // Armed but far from tripping: the hooks still run.
            cfg.telemetry.watchdogWindow = 1000000000;
            cfg.telemetry.packets = true;
        }
        cfg.finalize();
        System system(cfg);
        Workload::Params wp;
        wp.profile = benchmarkByName("face");
        wp.threads = cfg.numCores();
        wp.csScale = 0.01;
        wp.lockKind = cfg.lockKind;
        wp.seed = 3;
        Workload w(wp, system.coherent(), system.locks(),
                   system.sim());
        w.start();
        system.runUntil([&] { return w.done(); });
        std::uint64_t l1_sum = 0;
        for (int c = 0; c < cfg.numCores(); ++c)
            for (const auto &kv :
                 system.coherent().l1(c).stats.allCounters())
                l1_sum += kv.second;
        return std::make_tuple(w.roiFinish(), w.csCompleted(), l1_sum,
                               system.totalEarlyInvs());
    };
    EXPECT_EQ(fingerprint(false), fingerprint(true));
}

TEST(Diagnosis, ObserversAreWiredWhenEnabled)
{
    SystemConfig cfg;
    cfg.noc.meshWidth = 4;
    cfg.noc.meshHeight = 4;
    cfg.telemetry.recorder = true;
    cfg.telemetry.timeseriesEpoch = 64;
    cfg.finalize();
    System system(cfg);
    ASSERT_NE(system.telemetry(), nullptr);
    ASSERT_NE(system.telemetry()->recorder, nullptr);
    ASSERT_NE(system.telemetry()->timeseries, nullptr);
    // Columns were auto-registered for every router/NI/directory.
    EXPECT_GE(system.telemetry()->timeseries->numColumns(),
              4u * static_cast<std::size_t>(cfg.numCores()));

    Workload::Params wp;
    wp.profile = benchmarkByName("freq");
    wp.threads = cfg.numCores();
    wp.csScale = 0.005;
    wp.lockKind = cfg.lockKind;
    Workload w(wp, system.coherent(), system.locks(), system.sim());
    w.start();
    system.runUntil([&] { return w.done(); });
    EXPECT_GT(system.telemetry()->recorder->recordedTotal(), 0u);
    EXPECT_GT(system.telemetry()->timeseries->rows(), 0u);

    // The stats snapshot reports both observers.
    const std::string snap = system.statsSnapshot().dump();
    EXPECT_NE(snap.find("\"timeseries\""), std::string::npos);
    EXPECT_NE(snap.find("\"recorder\""), std::string::npos);
}

TEST(Diagnosis, OffModeIsZeroCost)
{
    SystemConfig cfg; // all telemetry off by default
    cfg.noc.meshWidth = 4;
    cfg.noc.meshHeight = 4;
    cfg.finalize();
    ASSERT_FALSE(cfg.telemetry.any());
    System system(cfg);
    EXPECT_EQ(system.telemetry(), nullptr);

    Workload::Params wp;
    wp.profile = benchmarkByName("freq");
    wp.threads = cfg.numCores();
    wp.csScale = 0.005;
    wp.lockKind = cfg.lockKind;
    Workload w(wp, system.coherent(), system.locks(), system.sim());
    w.start();
    system.runUntil([&] { return w.done(); });
    // The diagnosis hooks are null-observer branches: the optimized
    // schedule path must stay allocation-free with them compiled in.
    EXPECT_EQ(system.sim().events().scheduleHeapAllocs(), 0u);
}

// ---------------------------------------------------------------------
// Config plumbing
// ---------------------------------------------------------------------

TEST(Diagnosis, ConfigKeysReachSystemConfig)
{
    const char *argv[] = {"prog", "--watchdog-window=12345",
                          "--timeseries-epoch=64",
                          "--recorder-capacity=128",
                          "--drop-dir-response", "3",
                          "telemetry=recorder"};
    Config c;
    c.loadArgs(7, argv);
    SystemConfig cfg;
    cfg.applyOverrides(c);
    EXPECT_EQ(cfg.telemetry.watchdogWindow, 12345u);
    EXPECT_EQ(cfg.telemetry.timeseriesEpoch, 64u);
    EXPECT_EQ(cfg.telemetry.recorderCapacity, 128u);
    EXPECT_EQ(cfg.coh.dropDirResponseNth, 3u);
    EXPECT_TRUE(cfg.telemetry.recorder);
    EXPECT_TRUE(cfg.telemetry.any());
}

TEST(Diagnosis, TelemetrySpecTokensCoverNewObservers)
{
    TelemetryConfig tc;
    tc.applySpec("recorder,timeseries");
    EXPECT_TRUE(tc.recorder);
    EXPECT_EQ(tc.timeseriesEpoch, DEFAULT_TIMESERIES_EPOCH);
    EXPECT_EQ(tc.watchdogWindow, 0u); // watchdog is opt-in
    tc.applySpec("watchdog");
    EXPECT_EQ(tc.watchdogWindow, DEFAULT_WATCHDOG_WINDOW);
    tc.applySpec("off");
    EXPECT_FALSE(tc.any());
    EXPECT_EQ(tc.timeseriesEpoch, 0u);
    EXPECT_EQ(tc.watchdogWindow, 0u);
}

} // namespace
} // namespace inpg
