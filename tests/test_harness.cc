/**
 * @file
 * Harness tests: configuration parsing, mechanism wiring, the table
 * printer, the synthesis model, OCOR's priority mapping, and
 * end-to-end experiment determinism.
 */

#include <gtest/gtest.h>

#include "harness/experiment.hh"
#include "harness/table_printer.hh"
#include "inpg/synthesis_model.hh"
#include "ocor/ocor_policy.hh"

namespace inpg {
namespace {

// ---------------------------------------------------------------------
// SystemConfig
// ---------------------------------------------------------------------

TEST(SystemConfig, ParseMechanismAndLock)
{
    EXPECT_EQ(parseMechanism("original"), Mechanism::Original);
    EXPECT_EQ(parseMechanism("OCOR"), Mechanism::Ocor);
    EXPECT_EQ(parseMechanism("inpg+ocor"), Mechanism::InpgOcor);
    EXPECT_THROW(parseMechanism("hyperspeed"), FatalError);
    EXPECT_EQ(parseLockKind("ttl"), LockKind::Ticket);
    EXPECT_EQ(parseLockKind("MCS"), LockKind::Mcs);
    EXPECT_THROW(parseLockKind("spin"), FatalError);
}

TEST(SystemConfig, FinalizeDerivesPolicyFromMechanism)
{
    SystemConfig c;
    c.mechanism = Mechanism::Ocor;
    c.finalize();
    EXPECT_EQ(c.noc.switchPolicy, SwitchPolicy::Priority);
    EXPECT_TRUE(c.sync.ocorEnabled);

    c.mechanism = Mechanism::Original;
    c.finalize();
    EXPECT_EQ(c.noc.switchPolicy, SwitchPolicy::RoundRobin);
    EXPECT_FALSE(c.sync.ocorEnabled);
    // Big-router count survives mechanism flips (sweeps reuse configs).
    EXPECT_EQ(c.inpg.numBigRouters, 32);
}

TEST(SystemConfig, OverridesApply)
{
    Config o;
    o.loadString("mesh_width = 4\nmesh_height = 2\nmechanism = inpg\n"
                  "lock = tas\nbig_routers = 3\nbarrier_ttl = 99\n");
    SystemConfig c;
    c.applyOverrides(o);
    EXPECT_EQ(c.noc.meshWidth, 4);
    EXPECT_EQ(c.numCores(), 8);
    EXPECT_EQ(c.mechanism, Mechanism::Inpg);
    EXPECT_EQ(c.lockKind, LockKind::Tas);
    EXPECT_EQ(c.inpg.numBigRouters, 3);
    EXPECT_EQ(c.inpg.barrierTtl, 99u);
    EXPECT_NE(c.describe().find("iNPG"), std::string::npos);
}

TEST(Mechanisms, PredicatesMatchPaperCases)
{
    EXPECT_FALSE(usesInpg(Mechanism::Original));
    EXPECT_FALSE(usesOcor(Mechanism::Original));
    EXPECT_TRUE(usesOcor(Mechanism::Ocor));
    EXPECT_FALSE(usesInpg(Mechanism::Ocor));
    EXPECT_TRUE(usesInpg(Mechanism::Inpg));
    EXPECT_TRUE(usesInpg(Mechanism::InpgOcor));
    EXPECT_TRUE(usesOcor(Mechanism::InpgOcor));
    EXPECT_STREQ(mechanismName(Mechanism::InpgOcor), "iNPG+OCOR");
}

// ---------------------------------------------------------------------
// TablePrinter
// ---------------------------------------------------------------------

TEST(TablePrinter, KeepsFirstRowAfterHeader)
{
    TablePrinter t;
    t.header({"a", "b"});
    t.row({"first", "1"});
    t.row({"second", "2"});
    std::string out = t.render();
    EXPECT_NE(out.find("first"), std::string::npos);
    EXPECT_NE(out.find("second"), std::string::npos);
    EXPECT_LT(out.find("first"), out.find("second"));
}

TEST(TablePrinter, AlignsAndPadsShortRows)
{
    TablePrinter t("ttl");
    t.header({"col1", "col2", "col3"});
    t.rowNumeric("pi", {3.14159, 2.5}, 2);
    std::string out = t.render();
    EXPECT_NE(out.find("3.14"), std::string::npos);
    EXPECT_NE(out.find("== ttl =="), std::string::npos);
}

TEST(TablePrinter, CsvEscapesAndSkipsSeparators)
{
    TablePrinter t("title ignored in csv");
    t.header({"a", "b"});
    t.row({"plain", "has,comma"});
    t.separator();
    t.row({"quo\"te", "x"});
    std::string csv = t.renderCsv();
    EXPECT_EQ(csv, "a,b\nplain,\"has,comma\"\n\"quo\"\"te\",x\n");
}

TEST(SystemConfig, RoutingOverride)
{
    Config o;
    o.loadString("routing = yx\n");
    SystemConfig c;
    c.applyOverrides(o);
    EXPECT_EQ(c.noc.routing, RoutingKind::YX);
    Config bad;
    bad.loadString("routing = zigzag\n");
    SystemConfig c2;
    EXPECT_THROW(c2.applyOverrides(bad), FatalError);
}

// ---------------------------------------------------------------------
// SynthesisModel
// ---------------------------------------------------------------------

TEST(SynthesisModel, ReproducesPaperSeedNumbers)
{
    SynthesisModel m;
    EXPECT_NEAR(m.normalRouter().gatesK, 19.9, 1e-9);
    EXPECT_NEAR(m.normalRouter().dynamicPowerMw, 84.2, 1e-9);
    // Big router at the paper's default table size = 22.4K gates.
    EXPECT_NEAR(m.bigRouter(16).gatesK, 22.4, 1e-9);
    EXPECT_NEAR(m.packetGenerator(16).gatesK, 2.5, 1e-9);
    EXPECT_NEAR(m.packetGenerator(16).dynamicPowerMw, 8.4, 1e-9);
    // +9.9% router power overhead (paper Sec. 4.2).
    EXPECT_NEAR(m.packetGenerator(16).dynamicPowerMw /
                    m.normalRouter().dynamicPowerMw,
                0.0998, 0.001);
    // Tiles: big 716.1 mW vs normal 707.7 mW.
    EXPECT_NEAR(m.tilePowerMw(true, 16), 716.1, 0.1);
    EXPECT_NEAR(m.tilePowerMw(false, 16), 707.7, 0.1);
}

TEST(SynthesisModel, ScalesWithTableSizeMonotonically)
{
    SynthesisModel m;
    EXPECT_LT(m.packetGenerator(4).gatesK, m.packetGenerator(16).gatesK);
    EXPECT_LT(m.packetGenerator(16).gatesK,
              m.packetGenerator(64).gatesK);
    EXPECT_LT(m.chipPowerMw(64, 0, 16), m.chipPowerMw(64, 32, 16));
    EXPECT_LT(m.chipPowerMw(64, 32, 16), m.chipPowerMw(64, 64, 16));
    EXPECT_THROW(m.chipPowerMw(64, 65, 16), FatalError);
}

TEST(SynthesisModel, RenderTableMentionsAllModules)
{
    std::string out = SynthesisModel().renderTable();
    EXPECT_NE(out.find("Core"), std::string::npos);
    EXPECT_NE(out.find("BigRouter"), std::string::npos);
    EXPECT_NE(out.find("Gate count"), std::string::npos);
}

// ---------------------------------------------------------------------
// OCOR policy
// ---------------------------------------------------------------------

TEST(OcorPolicy, RtrToPriorityMapping)
{
    OcorPolicy p;
    // 8 spinning levels of 16 retries each (Table 1).
    EXPECT_EQ(p.spinPriority(128), 1);  // full budget: lowest spin level
    EXPECT_EQ(p.spinPriority(113), 1);
    EXPECT_EQ(p.spinPriority(112), 2);
    EXPECT_EQ(p.spinPriority(17), 7);
    EXPECT_EQ(p.spinPriority(16), 8);   // about to sleep: highest
    EXPECT_EQ(p.spinPriority(1), 8);
    EXPECT_EQ(p.spinPriority(0), 8);
    EXPECT_EQ(p.wakeupPriority(), 0);   // wakeups: below all spinners
}

TEST(OcorPolicy, MonotoneInUrgency)
{
    OcorPolicy p;
    for (int rtr = 2; rtr <= 128; ++rtr)
        EXPECT_GE(p.spinPriority(rtr - 1), p.spinPriority(rtr));
}

// ---------------------------------------------------------------------
// Experiment runner
// ---------------------------------------------------------------------

TEST(Experiment, DeterministicAndMechanismSweepRuns)
{
    RunConfig rc;
    rc.profile = benchmarkByName("md");
    rc.system.noc.meshWidth = 4;
    rc.system.noc.meshHeight = 4;
    rc.csScale = 0.05;

    RunResult a = runBenchmark(rc);
    RunResult b = runBenchmark(rc);
    EXPECT_EQ(a.roiCycles, b.roiCycles);
    EXPECT_EQ(a.csCompleted, b.csCompleted);
    EXPECT_EQ(a.cohCycles, b.cohCycles);

    auto all = runAllMechanisms(rc);
    ASSERT_EQ(all.size(), 4u);
    EXPECT_EQ(all[0].mechanism, Mechanism::Original);
    EXPECT_EQ(all[0].earlyInvs, 0u);
    EXPECT_EQ(all[1].earlyInvs, 0u); // OCOR has no big routers
    for (const auto &r : all) {
        EXPECT_GT(r.roiCycles, 0u);
        EXPECT_EQ(r.csCompleted, all[0].csCompleted);
    }
}

TEST(Experiment, PhaseFractionsAreSane)
{
    RunConfig rc;
    rc.profile = benchmarkByName("freq");
    rc.system.noc.meshWidth = 4;
    rc.system.noc.meshHeight = 4;
    rc.csScale = 0.05;
    RunResult r = runBenchmark(rc);
    const int threads = 16;
    double total = r.phaseFraction(r.parallelCycles, threads) +
                   r.phaseFraction(r.cohCycles, threads) +
                   r.phaseFraction(r.cseCycles, threads);
    EXPECT_GT(total, 0.5);
    EXPECT_LE(total, 1.001);
    EXPECT_LE(r.sleepCycles, r.cohCycles);
    EXPECT_LE(r.lockCohCycles, r.cohCycles + r.cseCycles);
}

} // namespace
} // namespace inpg
