/**
 * @file
 * Umbrella-header test, part 1 of 2. This TU and
 * test_umbrella_second_tu.cc both include <inpg/inpg.hh> and are
 * linked into one binary: any non-inline definition leaking out of a
 * public header breaks the link (ODR), so the pair is a compile/link
 * guard for the whole public API surface.
 */

#include <inpg/inpg.hh>

#include <gtest/gtest.h>

namespace inpg {

// Defined in test_umbrella_second_tu.cc; proves both TUs link.
JsonValue umbrellaSnapshotFromSecondTu();

namespace {

TEST(Umbrella, PublicApiBuildsAndRuns)
{
    SystemConfig cfg;
    cfg.noc.meshWidth = 2;
    cfg.noc.meshHeight = 2;
    cfg.telemetry.applySpec("all");
    cfg.finalize();
    System system(cfg);
    ASSERT_NE(system.telemetry(), nullptr);
    EXPECT_NE(system.telemetry()->lco, nullptr);
    EXPECT_NE(system.telemetry()->packets, nullptr);
    EXPECT_NE(system.telemetry()->trace, nullptr);
    EXPECT_NE(system.telemetry()->kernel, nullptr);
    system.sim().run(100);
    JsonValue snap = system.statsSnapshot();
    EXPECT_EQ(snap.type(), JsonValue::Kind::Object);
}

TEST(Umbrella, SecondTuSharesTypes)
{
    JsonValue v = umbrellaSnapshotFromSecondTu();
    EXPECT_EQ(v.type(), JsonValue::Kind::Object);
    EXPECT_EQ(v["tu"].dump(), "\"second\"");
}

} // namespace
} // namespace inpg
