/**
 * @file
 * NoC unit tests: mesh geometry, XY routing properties, arbiters,
 * output-unit credit bookkeeping, vnet mapping, and parameterized
 * conservation sweeps across mesh sizes.
 */

#include <gtest/gtest.h>

#include <map>

#include "common/rng.hh"
#include "noc/arbiter.hh"
#include "noc/network.hh"
#include "noc/output_unit.hh"
#include "noc/routing.hh"
#include "sim/simulator.hh"

namespace inpg {
namespace {

// ---------------------------------------------------------------------
// MeshShape / XYRouting
// ---------------------------------------------------------------------

TEST(MeshShape, CoordinateRoundTrip)
{
    MeshShape m(8, 8);
    for (NodeId id = 0; id < m.numNodes(); ++id)
        EXPECT_EQ(m.idOf(m.coordOf(id)), id);
    EXPECT_EQ(m.coordOf(53).x, 5);
    EXPECT_EQ(m.coordOf(53).y, 6);
}

TEST(MeshShape, NeighborsRespectEdges)
{
    MeshShape m(4, 4);
    EXPECT_EQ(m.neighbor(0, Direction::North), INVALID_NODE);
    EXPECT_EQ(m.neighbor(0, Direction::West), INVALID_NODE);
    EXPECT_EQ(m.neighbor(0, Direction::East), 1);
    EXPECT_EQ(m.neighbor(0, Direction::South), 4);
    EXPECT_EQ(m.neighbor(15, Direction::East), INVALID_NODE);
    EXPECT_EQ(m.neighbor(5, Direction::Local), 5);
}

TEST(MeshShape, HopDistanceIsManhattan)
{
    MeshShape m(8, 8);
    EXPECT_EQ(m.hopDistance(0, 63), 14);
    EXPECT_EQ(m.hopDistance(9, 9), 0);
    EXPECT_EQ(m.hopDistance(0, 7), 7);
}

TEST(MeshShape, RejectsBadDimensions)
{
    EXPECT_THROW(MeshShape(0, 4), FatalError);
}

TEST(XYRouting, EveryPairMakesMonotoneProgress)
{
    // Property: following route() from any src reaches dst in exactly
    // hopDistance steps, moving in X before Y.
    MeshShape m(6, 5);
    XYRouting xy(m);
    for (NodeId s = 0; s < m.numNodes(); ++s) {
        for (NodeId d = 0; d < m.numNodes(); ++d) {
            NodeId here = s;
            int hops = 0;
            bool seen_y_move = false;
            while (here != d) {
                Direction dir = xy.route(here, d);
                ASSERT_NE(dir, Direction::Local);
                if (dir == Direction::North || dir == Direction::South)
                    seen_y_move = true;
                else
                    ASSERT_FALSE(seen_y_move)
                        << "X move after Y move (not XY order)";
                here = m.neighbor(here, dir);
                ASSERT_NE(here, INVALID_NODE);
                ASSERT_LE(++hops, m.hopDistance(s, d));
            }
            EXPECT_EQ(hops, m.hopDistance(s, d));
            EXPECT_EQ(xy.route(d, d), Direction::Local);
        }
    }
}

TEST(YXRouting, TransposedDimensionOrder)
{
    MeshShape m(5, 6);
    YXRouting yx(m);
    for (NodeId s = 0; s < m.numNodes(); ++s) {
        for (NodeId d = 0; d < m.numNodes(); ++d) {
            NodeId here = s;
            int hops = 0;
            bool seen_x_move = false;
            while (here != d) {
                Direction dir = yx.route(here, d);
                if (dir == Direction::East || dir == Direction::West)
                    seen_x_move = true;
                else
                    ASSERT_FALSE(seen_x_move)
                        << "Y move after X move (not YX order)";
                here = m.neighbor(here, dir);
                ASSERT_NE(here, INVALID_NODE);
                ASSERT_LE(++hops, m.hopDistance(s, d));
            }
            EXPECT_EQ(hops, m.hopDistance(s, d));
        }
    }
}

TEST(Directions, OppositeIsInvolution)
{
    for (Direction d : {Direction::North, Direction::East,
                        Direction::South, Direction::West}) {
        EXPECT_EQ(opposite(opposite(d)), d);
        EXPECT_NE(opposite(d), d);
    }
    EXPECT_EQ(opposite(Direction::Local), Direction::Local);
}

// ---------------------------------------------------------------------
// Arbiters
// ---------------------------------------------------------------------

TEST(RoundRobinArbiter, RotatesFairly)
{
    RoundRobinArbiter arb(4);
    std::vector<bool> all(4, true);
    std::map<int, int> grants;
    for (int i = 0; i < 40; ++i)
        ++grants[arb.grant(all)];
    for (int i = 0; i < 4; ++i)
        EXPECT_EQ(grants[i], 10);
}

TEST(RoundRobinArbiter, SkipsNonRequesters)
{
    RoundRobinArbiter arb(4);
    std::vector<bool> reqs{false, true, false, true};
    for (int i = 0; i < 10; ++i) {
        int g = arb.grant(reqs);
        EXPECT_TRUE(g == 1 || g == 3);
    }
    EXPECT_EQ(arb.grant(std::vector<bool>(4, false)), -1);
}

TEST(PriorityArbiter, HighestPriorityWins)
{
    PriorityArbiter arb(3, 0);
    std::vector<PriorityArbiter::Request> reqs(3);
    reqs[0] = {true, 2, 0};
    reqs[1] = {true, 8, 0};
    reqs[2] = {true, 5, 0};
    for (int i = 0; i < 5; ++i)
        EXPECT_EQ(arb.grant(reqs), 1);
}

TEST(PriorityArbiter, TiesBreakRoundRobin)
{
    PriorityArbiter arb(2, 0);
    std::vector<PriorityArbiter::Request> reqs(2);
    reqs[0] = {true, 3, 0};
    reqs[1] = {true, 3, 0};
    int first = arb.grant(reqs);
    int second = arb.grant(reqs);
    EXPECT_NE(first, second);
}

TEST(PriorityArbiter, AgingLiftsStarvedRequests)
{
    PriorityArbiter arb(2, 10); // +1 priority per 10 cycles of age
    std::vector<PriorityArbiter::Request> reqs(2);
    reqs[0] = {true, 5, 0};  // high priority, fresh
    reqs[1] = {true, 0, 60}; // low priority, starved 60 cycles -> +6
    EXPECT_EQ(arb.grant(reqs), 1);
    reqs[1].age = 10; // only +1 now
    EXPECT_EQ(arb.grant(reqs), 0);
}

// ---------------------------------------------------------------------
// OutputUnit credits
// ---------------------------------------------------------------------

TEST(OutputUnit, CreditLifecycle)
{
    OutputUnit ou(4, 2);
    EXPECT_EQ(ou.credits(1), 2);
    ou.decrementCredit(1);
    ou.decrementCredit(1);
    EXPECT_EQ(ou.credits(1), 0);
    ou.receiveCredit(Credit{1, false});
    EXPECT_EQ(ou.credits(1), 1);
}

TEST(OutputUnit, VcAllocationRoundRobinInRange)
{
    OutputUnit ou(8, 4);
    VcId a = ou.findFreeVcInRange(2, 5);
    ASSERT_NE(a, INVALID_VC);
    ou.allocateVc(a);
    VcId b = ou.findFreeVcInRange(2, 5);
    ASSERT_NE(b, INVALID_VC);
    EXPECT_NE(a, b);
    EXPECT_GE(b, 2);
    EXPECT_LE(b, 5);
    ou.freeVc(a);
    EXPECT_TRUE(ou.isVcFree(a));
}

TEST(NocConfig, VnetVcPartition)
{
    NocConfig cfg;
    cfg.numVnets = 4;
    cfg.vcsPerVnet = 2;
    EXPECT_EQ(cfg.totalVcs(), 8);
    EXPECT_EQ(cfg.vnetVcLo(0), 0);
    EXPECT_EQ(cfg.vnetVcHi(0), 1);
    EXPECT_EQ(cfg.vnetVcLo(3), 6);
    EXPECT_EQ(cfg.vnetOfVc(7), 3);
    EXPECT_EQ(cfg.vnetOfVc(2), 1);
}

// ---------------------------------------------------------------------
// Parameterized conservation sweep across mesh sizes
// ---------------------------------------------------------------------

struct MeshCase {
    int w;
    int h;
};

class NocConservation : public ::testing::TestWithParam<MeshCase>
{};

TEST_P(NocConservation, RandomTrafficIsConserved)
{
    const MeshCase mc = GetParam();
    NocConfig cfg;
    cfg.meshWidth = mc.w;
    cfg.meshHeight = mc.h;
    Simulator sim;
    Network net(cfg, sim);
    std::map<PacketId, NodeId> expect;
    std::map<PacketId, int> got;
    for (NodeId n = 0; n < net.numNodes(); ++n) {
        net.niFor(n).setDeliverCallback(
            n, [&got, n, &expect](const PacketPtr &p, Cycle) {
                ++got[p->id];
                EXPECT_EQ(expect[p->id], n);
            });
    }
    Rng rng(static_cast<std::uint64_t>(mc.w * 100 + mc.h));
    const int total = 200;
    int sent = 0;
    while (sent < total ||
           static_cast<int>(got.size()) < total) {
        if (sent < total && rng.chance(0.5)) {
            NodeId s = static_cast<NodeId>(
                rng.nextBounded(static_cast<std::uint64_t>(
                    net.numNodes())));
            NodeId d = static_cast<NodeId>(
                rng.nextBounded(static_cast<std::uint64_t>(
                    net.numNodes())));
            auto pkt = net.makePacket(
                s, d, static_cast<VnetId>(rng.nextBounded(4)),
                rng.chance(0.25) ? 8 : 1);
            expect[pkt->id] = d;
            net.inject(pkt, sim.now());
            ++sent;
        }
        sim.step();
        ASSERT_LT(sim.now(), 100000u);
    }
    for (const auto &kv : got)
        EXPECT_EQ(kv.second, 1) << "packet duplicated";
}

INSTANTIATE_TEST_SUITE_P(Meshes, NocConservation,
                         ::testing::Values(MeshCase{1, 4}, MeshCase{2, 2},
                                           MeshCase{3, 5}, MeshCase{4, 4},
                                           MeshCase{8, 2}),
                         [](const auto &info) {
                             return std::to_string(info.param.w) + "x" +
                                    std::to_string(info.param.h);
                         });

} // namespace
} // namespace inpg
