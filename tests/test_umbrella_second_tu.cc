/**
 * @file
 * Umbrella-header test, part 2 of 2 (see test_umbrella.cc). A second
 * full inclusion of <inpg/inpg.hh> in the same binary: duplicate
 * non-inline symbols in any public header fail this link.
 */

#include <inpg/inpg.hh>

namespace inpg {

JsonValue
umbrellaSnapshotFromSecondTu()
{
    // Touch types from several layers so the linker sees real uses.
    TelemetryConfig tc;
    tc.applySpec("lco,trace");
    Telemetry telem(tc, 4);
    telem.lco->acquireBegin(0, 10);
    telem.lco->acquireEnd(0, 35);
    JsonValue v = telem.lco->summary().toJson();
    v["tu"] = "second";
    return v;
}

} // namespace inpg
