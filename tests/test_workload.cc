/**
 * @file
 * Workload-layer tests: benchmark profiles, the phase recorder, thread
 * contexts and full workload runs on a small system.
 */

#include <gtest/gtest.h>

#include <set>

#include "harness/system.hh"
#include "workload/benchmark_profile.hh"
#include "workload/workload.hh"

namespace inpg {
namespace {

// ---------------------------------------------------------------------
// BenchmarkProfile table
// ---------------------------------------------------------------------

TEST(Benchmarks, TwentyFourProgramsInPaperGroups)
{
    const auto &all = allBenchmarks();
    EXPECT_EQ(all.size(), 24u);
    EXPECT_EQ(benchmarksInGroup(1).size(), 6u);
    EXPECT_EQ(benchmarksInGroup(2).size(), 12u);
    EXPECT_EQ(benchmarksInGroup(3).size(), 6u);

    int parsec = 0;
    std::set<std::string> names;
    for (const auto &b : all) {
        parsec += b.suite == Suite::Parsec ? 1 : 0;
        EXPECT_TRUE(names.insert(b.name).second)
            << "duplicate " << b.name;
        EXPECT_GT(b.totalCs, 0u);
        EXPECT_GT(b.avgCsCycles, 0);
        EXPECT_GT(b.avgParallelCycles, 0);
        EXPECT_GE(b.numLocks, 1);
    }
    EXPECT_EQ(parsec, 10);
}

TEST(Benchmarks, GroupsSeparateByTotalCsWork)
{
    // Group ordering must reflect totalCs x avgCsCycles (Fig. 8b).
    double max_g1 = 0;
    double min_g2 = 1e18;
    double max_g2 = 0;
    double min_g3 = 1e18;
    for (const auto &b : allBenchmarks()) {
        double work = static_cast<double>(b.totalCs) * b.avgCsCycles;
        if (b.group == 1)
            max_g1 = std::max(max_g1, work);
        if (b.group == 2) {
            min_g2 = std::min(min_g2, work);
            max_g2 = std::max(max_g2, work);
        }
        if (b.group == 3)
            min_g3 = std::min(min_g3, work);
    }
    EXPECT_LT(max_g1, min_g2);
    EXPECT_LT(max_g2, min_g3);
}

TEST(Benchmarks, LookupByShortAndFullName)
{
    EXPECT_EQ(benchmarkByName("fluid").totalCs, 10240u);
    EXPECT_EQ(benchmarkByName("fluidanimate").name, "fluid");
    EXPECT_DOUBLE_EQ(benchmarkByName("imag").avgCsCycles, 179.0);
    EXPECT_THROW(benchmarkByName("nosuch"), FatalError);
}

TEST(Benchmarks, CsPerThreadScalesAndFloors)
{
    const auto &p = benchmarkByName("fluid"); // 10240 total
    EXPECT_EQ(p.csPerThread(64, 1.0), 160);
    EXPECT_EQ(p.csPerThread(64, 0.1), 16);
    EXPECT_EQ(p.csPerThread(64, 1e-6), 2); // floor
}

// ---------------------------------------------------------------------
// PhaseRecorder
// ---------------------------------------------------------------------

TEST(PhaseRecorder, AccumulatesPerPhase)
{
    PhaseRecorder r(0);
    r.transition(ThreadPhase::Coh, 100);  // 0..100 parallel
    r.transition(ThreadPhase::Cse, 150);  // 100..150 coh
    r.transition(ThreadPhase::Parallel, 180); // 150..180 cse
    r.transition(ThreadPhase::Done, 300);
    EXPECT_EQ(r.cyclesIn(ThreadPhase::Parallel), 220u);
    EXPECT_EQ(r.cyclesIn(ThreadPhase::Coh), 50u);
    EXPECT_EQ(r.cyclesIn(ThreadPhase::Cse), 30u);
    EXPECT_EQ(r.cohCycles(), 50u);
}

TEST(PhaseRecorder, SleepCountsIntoCoh)
{
    PhaseRecorder r(1);
    r.transition(ThreadPhase::Coh, 10);
    r.transition(ThreadPhase::Sleep, 20);
    r.transition(ThreadPhase::Coh, 50);
    r.transition(ThreadPhase::Cse, 60);
    EXPECT_EQ(r.cyclesIn(ThreadPhase::Sleep), 30u);
    EXPECT_EQ(r.cohCycles(), 10u + 30u + 10u);
    EXPECT_EQ(r.lcoCycles(), 20u);
}

TEST(PhaseRecorder, PhaseAtBinarySearch)
{
    PhaseRecorder r(2);
    r.transition(ThreadPhase::Coh, 100);
    r.transition(ThreadPhase::Cse, 200);
    EXPECT_EQ(r.phaseAt(0), ThreadPhase::Parallel);
    EXPECT_EQ(r.phaseAt(99), ThreadPhase::Parallel);
    EXPECT_EQ(r.phaseAt(100), ThreadPhase::Coh);
    EXPECT_EQ(r.phaseAt(150), ThreadPhase::Coh);
    EXPECT_EQ(r.phaseAt(5000), ThreadPhase::Cse);
}

// ---------------------------------------------------------------------
// Workload end-to-end on a small system
// ---------------------------------------------------------------------

struct WorkloadHarness {
    explicit WorkloadHarness(LockKind kind, double scale = 0.2)
    {
        cfg.noc.meshWidth = 4;
        cfg.noc.meshHeight = 4;
        cfg.lockKind = kind;
        cfg.finalize();
        system = std::make_unique<System>(cfg);
        Workload::Params wp;
        wp.profile = benchmarkByName("ferret"); // multi-lock program
        wp.threads = cfg.numCores();
        wp.csScale = scale;
        wp.lockKind = kind;
        workload = std::make_unique<Workload>(
            wp, system->coherent(), system->locks(), system->sim());
    }

    SystemConfig cfg;
    std::unique_ptr<System> system;
    std::unique_ptr<Workload> workload;
};

TEST(Workload, RunsToCompletionWithExactCsCounts)
{
    WorkloadHarness h(LockKind::Qsl);
    h.workload->start();
    h.system->runUntil([&] { return h.workload->done(); });
    const int per_thread = h.workload->csTargetPerThread();
    EXPECT_EQ(h.workload->csCompleted(),
              static_cast<std::uint64_t>(per_thread) * 16u);
    EXPECT_GT(h.workload->roiFinish(), 0u);
    // Locks created per the profile.
    EXPECT_EQ(h.workload->locks().size(),
              static_cast<std::size_t>(
                  benchmarkByName("ferret").numLocks));
    // Every thread saw all three phases.
    for (const auto &t : h.workload->threads()) {
        EXPECT_TRUE(t->done());
        EXPECT_GT(t->recorder().cyclesIn(ThreadPhase::Parallel), 0u);
        EXPECT_GT(t->recorder().cyclesIn(ThreadPhase::Cse), 0u);
    }
}

TEST(Workload, PhaseCyclesRoughlyCoverRoi)
{
    WorkloadHarness h(LockKind::Mcs);
    h.workload->start();
    h.system->runUntil([&] { return h.workload->done(); });
    // Summed phase cycles can't exceed threads x ROI, and should cover
    // most of it (threads idle only after finishing).
    const double roi_total = static_cast<double>(
                                 h.workload->roiFinish()) * 16.0;
    const double phases =
        static_cast<double>(h.workload->totalCycles(ThreadPhase::Parallel) +
                            h.workload->totalCycles(ThreadPhase::Coh) +
                            h.workload->totalCycles(ThreadPhase::Sleep) +
                            h.workload->totalCycles(ThreadPhase::Cse));
    EXPECT_LE(phases, roi_total * 1.001);
    EXPECT_GT(phases, roi_total * 0.5);
}

TEST(Workload, DeterministicForSameSeed)
{
    Cycle roi[2];
    for (int i = 0; i < 2; ++i) {
        WorkloadHarness h(LockKind::Tas, 0.1);
        h.workload->start();
        h.system->runUntil([&] { return h.workload->done(); });
        roi[i] = h.workload->roiFinish();
    }
    EXPECT_EQ(roi[0], roi[1]);
}

TEST(Workload, LockHomePinningIsHonored)
{
    SystemConfig cfg;
    cfg.noc.meshWidth = 4;
    cfg.noc.meshHeight = 4;
    cfg.finalize();
    System system(cfg);
    Workload::Params wp;
    wp.profile = benchmarkByName("md");
    wp.threads = 16;
    wp.csScale = 0.1;
    wp.lockHome = 11;
    Workload w(wp, system.coherent(), system.locks(), system.sim());
    w.start();
    system.runUntil([&] { return w.done(); });
    // The lock's home directory must have seen the traffic.
    EXPECT_GT(system.coherent().directory(11).stats.value("getx"), 0u);
}

} // namespace
} // namespace inpg
