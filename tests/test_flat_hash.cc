/**
 * @file
 * FlatHashMap tests: randomized differential check against the
 * standard containers under the address distribution the directory
 * actually sees (line-aligned, hot-set skew), growth/rehash behavior,
 * backward-shift deletion, and an end-to-end golden-memory run
 * asserting identical coherence results with map vs flat-hash
 * containers.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "coh/coherent_system.hh"
#include "coh/golden_memory.hh"
#include "common/flat_hash_map.hh"
#include "common/rng.hh"
#include "sim/simulator.hh"

namespace inpg {
namespace {

/** Line-aligned address with a hot working set, as the directory sees. */
Addr
skewedLineAddr(Rng &rng, Addr line_size)
{
    const std::uint64_t line = rng.chance(0.75)
        ? rng.nextBounded(24)        // hot set
        : rng.nextBounded(4096);     // long cold tail
    return static_cast<Addr>(line) * line_size;
}

TEST(FlatHash, MirrorsUnorderedMapUnderSkewedAddrs)
{
    FlatHashMap<Addr, std::uint64_t> flat;
    std::unordered_map<Addr, std::uint64_t> mirror;
    Rng rng(2024);
    for (int op = 0; op < 200000; ++op) {
        const Addr a = skewedLineAddr(rng, 128);
        const std::uint64_t kind = rng.nextBounded(10);
        if (kind < 5) {
            const std::uint64_t v = rng.next();
            flat[a] = v;
            mirror[a] = v;
        } else if (kind < 8) {
            const std::uint64_t *f = flat.find(a);
            auto it = mirror.find(a);
            ASSERT_EQ(f != nullptr, it != mirror.end()) << "addr " << a;
            if (f)
                ASSERT_EQ(*f, it->second) << "addr " << a;
        } else {
            ASSERT_EQ(flat.erase(a), mirror.erase(a) != 0) << "addr " << a;
        }
        ASSERT_EQ(flat.size(), mirror.size());
    }
    // Full sweep both ways: every mirror entry is in the flat map with
    // the same value, and forEach visits exactly the mirror's entries.
    for (const auto &[k, v] : mirror) {
        const std::uint64_t *f = flat.find(k);
        ASSERT_NE(f, nullptr) << "addr " << k;
        ASSERT_EQ(*f, v) << "addr " << k;
    }
    std::size_t visited = 0;
    flat.forEach([&](const Addr &k, const std::uint64_t &v) {
        auto it = mirror.find(k);
        ASSERT_NE(it, mirror.end()) << "addr " << k;
        ASSERT_EQ(it->second, v) << "addr " << k;
        ++visited;
    });
    EXPECT_EQ(visited, mirror.size());
}

TEST(FlatHash, GrowthRehashPreservesEntries)
{
    FlatHashMap<std::uint64_t, std::uint64_t> flat;
    EXPECT_EQ(flat.capacity(), 0u);
    const std::uint64_t n = 20000;
    for (std::uint64_t i = 0; i < n; ++i)
        flat[i * 128] = i;
    EXPECT_EQ(flat.size(), n);
    EXPECT_GT(flat.rehashes(), 0u);
    // Load factor stays at or under 3/4 after growth.
    EXPECT_GE(flat.capacity() * 3, flat.size() * 4);
    for (std::uint64_t i = 0; i < n; ++i) {
        const std::uint64_t *v = flat.find(i * 128);
        ASSERT_NE(v, nullptr) << i;
        ASSERT_EQ(*v, i);
    }
    EXPECT_EQ(flat.find(n * 128), nullptr);
}

TEST(FlatHash, EraseBackwardShiftKeepsLookupsExact)
{
    // Erase every other entry, then every remaining entry, verifying
    // lookups after each deletion (backward-shift must never strand a
    // displaced key).
    FlatHashMap<std::uint64_t, std::uint64_t> flat;
    std::map<std::uint64_t, std::uint64_t> mirror;
    Rng rng(99);
    for (int i = 0; i < 3000; ++i) {
        // Clustered keys maximize probe-chain overlap.
        const std::uint64_t k = rng.nextBounded(512) * 128;
        flat[k] = k + 1;
        mirror[k] = k + 1;
    }
    bool toggle = false;
    for (auto it = mirror.begin(); it != mirror.end();) {
        toggle = !toggle;
        if (toggle) {
            ASSERT_TRUE(flat.erase(it->first));
            it = mirror.erase(it);
        } else {
            ++it;
        }
        if (mirror.size() % 16 == 0)
            for (const auto &[k, v] : mirror)
                ASSERT_NE(flat.find(k), nullptr) << "addr " << k;
    }
    for (const auto &[k, v] : mirror)
        ASSERT_TRUE(flat.erase(k));
    EXPECT_TRUE(flat.empty());
}

/** One run of randomized coherent traffic; everything it may differ in. */
struct TrafficResult {
    std::string goldenErr;
    std::size_t goldenLines = 0;
    Cycle finalCycle = 0;
    std::vector<std::uint64_t> loadedValues;
    std::map<std::string, std::uint64_t> cohCounters;
    std::map<std::string, std::uint64_t> nodeCounters;

    bool
    operator==(const TrafficResult &o) const
    {
        return goldenErr == o.goldenErr && goldenLines == o.goldenLines &&
               finalCycle == o.finalCycle &&
               loadedValues == o.loadedValues &&
               cohCounters == o.cohCounters &&
               nodeCounters == o.nodeCounters;
    }
};

TrafficResult
runCoherentTraffic(bool flat_containers)
{
    NocConfig nocCfg;
    nocCfg.meshWidth = 4;
    nocCfg.meshHeight = 4;
    CohConfig cohCfg;
    cohCfg.flatContainers = flat_containers;
    Simulator sim;
    CoherentSystem sys(nocCfg, cohCfg, sim);
    GoldenMemory golden;
    sys.setOpLog([&](const OpRecord &r) { golden.record(r); });

    TrafficResult res;
    Rng rng(4242);
    const int cores = sys.numCores();
    int outstanding = 0;
    for (int round = 0; round < 60; ++round) {
        // One op per core per round keeps every L1 at one pending op
        // while still racing cores against each other on the hot set.
        for (CoreId c = 0; c < cores; ++c) {
            const Addr a = skewedLineAddr(rng, cohCfg.lineSize);
            ++outstanding;
            if (rng.chance(0.5)) {
                sys.l1(c).issueLoad(a, false, [&res, &outstanding](
                                                  std::uint64_t v) {
                    res.loadedValues.push_back(v);
                    --outstanding;
                });
            } else {
                sys.l1(c).issueStore(a, rng.next(), false,
                                     [&outstanding](std::uint64_t) {
                                         --outstanding;
                                     });
            }
        }
        const bool ok =
            sim.runUntil([&] { return outstanding == 0; }, 2000000);
        EXPECT_TRUE(ok) << "round " << round << " timed out";
        if (!ok)
            break;
    }

    res.goldenErr = golden.verify();
    res.goldenLines = golden.size();
    res.finalCycle = sim.now();
    res.cohCounters = sys.cohStats().counters.allCounters();
    for (CoreId c = 0; c < cores; ++c)
        for (const auto &[k, v] : sys.l1(c).stats.allCounters())
            res.nodeCounters["l1" + std::to_string(c) + "." + k] += v;
    for (NodeId n = 0; n < nocCfg.numNodes(); ++n)
        for (const auto &[k, v] : sys.directory(n).stats.allCounters())
            res.nodeCounters["dir" + std::to_string(n) + "." + k] += v;
    return res;
}

TEST(FlatHash, GoldenEndToEndIdenticalWithMapContainers)
{
    TrafficResult flat = runCoherentTraffic(true);
    TrafficResult ref = runCoherentTraffic(false);
    EXPECT_EQ(flat.goldenErr, "");
    EXPECT_EQ(ref.goldenErr, "");
    EXPECT_GT(flat.loadedValues.size(), 0u);
    EXPECT_TRUE(flat == ref);
}

} // namespace
} // namespace inpg
