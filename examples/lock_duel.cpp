/**
 * @file
 * lock_duel: compare the five locking primitives head-to-head on one
 * benchmark profile (paper Section 2.1's menagerie), with and without
 * iNPG -- a compact view of Figures 2 and 13.
 *
 * Usage: lock_duel [benchmark=fluid] [cs_scale=0.1] [mesh_width=8] ...
 */

#include <cstdio>

#include "common/config.hh"
#include "common/strutil.hh"
#include "harness/experiment.hh"
#include "harness/table_printer.hh"

using namespace inpg;

int
main(int argc, char **argv)
{
    Config overrides;
    overrides.loadArgs(argc, argv);

    const BenchmarkProfile &profile =
        benchmarkByName(overrides.getString("benchmark", "fluid"));
    const double cs_scale = overrides.getDouble("cs_scale", 0.1);

    std::printf("lock_duel -- '%s' (%s, group %d): %llu CS, ~%.0f "
                "cycles each, %d lock(s)\n\n",
                profile.fullName.c_str(),
                profile.suite == Suite::Parsec ? "PARSEC" : "OMP2012",
                profile.group,
                static_cast<unsigned long long>(profile.totalCs),
                profile.avgCsCycles, profile.numLocks);

    TablePrinter t("five primitives, Original vs iNPG");
    t.header({"lock", "ROI (Original)", "ROI (iNPG)", "iNPG gain",
              "LCO% (Orig)", "sleeps", "early Invs"});

    for (LockKind k : {LockKind::Tas, LockKind::Ticket, LockKind::Abql,
                       LockKind::Mcs, LockKind::Qsl}) {
        RunConfig rc;
        rc.profile = profile;
        rc.system.applyOverrides(overrides);
        rc.system.lockKind = k;
        rc.csScale = cs_scale;

        rc.system.mechanism = Mechanism::Original;
        RunResult base = runBenchmark(rc);
        rc.system.mechanism = Mechanism::Inpg;
        RunResult inpg = runBenchmark(rc);

        double lco = static_cast<double>(base.lockCohCycles) /
                     (static_cast<double>(base.roiCycles) *
                      rc.system.numCores());
        t.row({lockKindName(k), std::to_string(base.roiCycles),
               std::to_string(inpg.roiCycles),
               fixed(100.0 * (1.0 - static_cast<double>(inpg.roiCycles) /
                                        static_cast<double>(
                                            base.roiCycles)),
                     1) + "%",
               fixed(100.0 * lco, 1) + "%",
               std::to_string(base.sleeps),
               std::to_string(inpg.earlyInvs)});
    }
    std::printf("%s\n", t.render().c_str());
    std::printf("Reading guide: TAS generates the heaviest lock "
                "coherence traffic and benefits most from iNPG; MCS's "
                "local spinning leaves iNPG the least to do (paper "
                "Figs. 2 and 13).\n");
    return 0;
}
