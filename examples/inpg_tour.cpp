/**
 * @file
 * inpg_tour: a guided tour of the iNPG mechanism on a small mesh --
 * drives a contended lock, then walks through what the big routers did:
 * barriers installed, GetX requests stopped, early invalidations
 * generated, acks relayed, and what that did to the Inv-Ack round trip.
 *
 * Usage: inpg_tour [mesh_width=4] [mesh_height=4] [rounds=6]
 */

#include <cstdio>

#include "common/config.hh"
#include "harness/system.hh"
#include "inpg/big_router.hh"
#include "sync/lock_manager.hh"

using namespace inpg;

namespace {

/** Drive `rounds` of acquire/hold/release per thread; returns cycles. */
Cycle
contend(System &system, LockPrimitive *lock, int rounds, Cycle hold)
{
    const int n = system.config().numCores();
    std::vector<int> remaining(static_cast<std::size_t>(n), rounds);
    int active = n;
    std::function<void(ThreadId)> loop = [&](ThreadId t) {
        if (remaining[static_cast<std::size_t>(t)]-- <= 0) {
            --active;
            return;
        }
        lock->acquire(t, [&, t] {
            system.sim().scheduleIn(hold, [&, t] {
                lock->release(t, [&, t] { loop(t); });
            });
        });
    };
    Cycle start = system.sim().now();
    for (ThreadId t = 0; t < n; ++t)
        loop(t);
    system.runUntil([&] { return active == 0; });
    return system.sim().now() - start;
}

} // namespace

int
main(int argc, char **argv)
{
    Config overrides;
    overrides.loadArgs(argc, argv);
    const int rounds = static_cast<int>(overrides.getInt("rounds", 6));

    std::printf("iNPG tour -- every thread hammers one test-and-set "
                "lock; compare the coherence life of the Original and "
                "iNPG systems.\n\n");

    Cycle base_cycles = 0;
    for (Mechanism m : {Mechanism::Original, Mechanism::Inpg}) {
        SystemConfig sc;
        sc.noc.meshWidth =
            static_cast<int>(overrides.getInt("mesh_width", 4));
        sc.noc.meshHeight =
            static_cast<int>(overrides.getInt("mesh_height", 4));
        sc.applyOverrides(overrides);
        sc.mechanism = m;
        sc.lockKind = LockKind::Tas;
        sc.finalize();

        System system(sc);
        LockPrimitive *lock =
            system.locks().createLock(LockKind::Tas, sc.numCores(), 5);
        Cycle took = contend(system, lock, rounds, 80);
        if (m == Mechanism::Original)
            base_cycles = took;

        std::printf("=== %s ===\n", mechanismName(m));
        std::printf("  %d threads x %d rounds finished in %llu cycles"
                    "%s\n",
                    sc.numCores(), rounds,
                    static_cast<unsigned long long>(took),
                    m == Mechanism::Inpg && base_cycles
                        ? (" (" +
                           std::to_string(100 * took / base_cycles) +
                           "% of Original)").c_str()
                        : "");
        std::printf("  acquisitions: %llu, swap failures: %llu\n",
                    static_cast<unsigned long long>(
                        lock->stats.value("acquisitions")),
                    static_cast<unsigned long long>(
                        lock->stats.value("swap_failures")));
        const CohStats &cstats = system.coherent().cohStats();
        std::printf("  Inv-Ack round trip: mean %.1f, max %llu cycles "
                    "(%llu home + %llu early samples)\n",
                    cstats.rttHistogram.mean(),
                    static_cast<unsigned long long>(
                        cstats.rttHistogram.max()),
                    static_cast<unsigned long long>(
                        cstats.rttHome.count()),
                    static_cast<unsigned long long>(
                        cstats.rttEarly.count()));

        if (m == Mechanism::Inpg) {
            std::printf("  big routers (%d deployed):\n",
                        system.deployedBigRouters());
            for (NodeId n = 0;
                 n < system.coherent().network().numRouters(); ++n) {
                auto *br = dynamic_cast<BigRouter *>(
                    &system.coherent().network().router(n));
                if (!br)
                    continue;
                const auto &g = br->generator();
                std::uint64_t stopped =
                    g.stats.value("getx_stopped");
                if (stopped == 0)
                    continue;
                std::printf("    node %2d: barriers %llu, GetX stopped "
                            "%llu, early Invs %llu, acks relayed %llu\n",
                            n,
                            static_cast<unsigned long long>(
                                g.barrierTable().stats.value(
                                    "barriers_created")),
                            static_cast<unsigned long long>(stopped),
                            static_cast<unsigned long long>(
                                g.stats.value("early_invs_generated")),
                            static_cast<unsigned long long>(
                                g.stats.value("acks_relayed")));
            }
        }
        std::printf("\n");
    }
    std::printf("What to look for: with iNPG the big routers nearest "
                "the competing cores stop losing swaps, invalidate "
                "early, and the round-trip histogram loses its long "
                "tail (paper Figs. 5 and 10).\n");
    return 0;
}
