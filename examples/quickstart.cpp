/**
 * @file
 * Quickstart: build the paper's 64-core system, run one benchmark
 * under all four mechanisms, and print the comparison.
 *
 * Defaults showcase the mechanism most clearly: facesim under the
 * test-and-set lock (the primitive with the heaviest lock coherence
 * traffic). Pass lock=qsl for the paper's default platform setup.
 *
 * Usage: quickstart [benchmark=face] [lock=tas] [mesh_width=8]
 *                   [mesh_height=8] [cs_scale=0.1] [seed=1] ...
 */

#include <cstdio>
#include <iostream>

#include "common/config.hh"
#include "common/strutil.hh"
#include "harness/experiment.hh"
#include "harness/table_printer.hh"

using namespace inpg;

int
main(int argc, char **argv)
{
    Config overrides;
    overrides.loadArgs(argc, argv);

    RunConfig rc;
    rc.profile =
        benchmarkByName(overrides.getString("benchmark", "face"));
    if (!overrides.has("lock"))
        rc.system.lockKind = LockKind::Tas;
    rc.system.applyOverrides(overrides);
    rc.csScale = overrides.getDouble("cs_scale", 0.1);

    std::cout << "iNPG quickstart -- benchmark '" << rc.profile.fullName
              << "' on a " << rc.system.noc.meshWidth << "x"
              << rc.system.noc.meshHeight << " many-core\n\n";
    std::cout << rc.system.describe() << "\n";

    TablePrinter table("Four comparative mechanisms (paper Sec. 5.1)");
    table.header({"mechanism", "ROI cycles", "rel. ROI", "CS time",
                  "CS speedup", "COH%", "CSE%", "early Invs",
                  "sleeps"});

    std::vector<RunResult> results = runAllMechanisms(rc);
    const double base_roi = static_cast<double>(results[0].roiCycles);
    const double base_cs =
        static_cast<double>(results[0].csTotalCycles());
    const int threads = rc.system.numCores();

    for (const auto &r : results) {
        table.row({
            mechanismName(r.mechanism),
            std::to_string(r.roiCycles),
            fixed(100.0 * static_cast<double>(r.roiCycles) / base_roi,
                  1) + "%",
            std::to_string(r.csTotalCycles()),
            fixed(base_cs / static_cast<double>(r.csTotalCycles()), 2) +
                "x",
            fixed(100.0 * r.phaseFraction(r.cohCycles, threads), 1),
            fixed(100.0 * r.phaseFraction(r.cseCycles, threads), 1),
            std::to_string(r.earlyInvs),
            std::to_string(r.sleeps),
        });
    }
    std::cout << "\n" << table.render() << "\n";
    std::cout << "CS entries per run: " << results[0].csCompleted
              << " (cs_scale=" << rc.csScale << ")\n";
    if (results[0].csCompleted <
        static_cast<std::uint64_t>(5 * rc.system.numCores())) {
        std::cout << "NOTE: fewer than 5 CS per thread were simulated; "
                     "mechanism deltas at this scale are noise-"
                     "dominated. Use cs_scale=0.1 or higher (and "
                     "several seeds) for steadier comparisons.\n";
    }
    return 0;
}
