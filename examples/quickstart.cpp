/**
 * @file
 * Quickstart: build the paper's 64-core system, run one benchmark
 * under all four mechanisms, and print the comparison.
 *
 * Defaults showcase the mechanism most clearly: facesim under the
 * test-and-set lock (the primitive with the heaviest lock coherence
 * traffic). Pass lock=qsl for the paper's default platform setup.
 *
 * Every run records per-acquire LCO attribution (the typed
 * RunResult::lco summary -- no text parsing) and writes a
 * Perfetto-loadable Chrome trace plus a JSON stats snapshot of the
 * iNPG run.
 *
 * Usage: quickstart [benchmark=face] [lock=tas] [mesh_width=8]
 *                   [mesh_height=8] [cs_scale=0.1] [seed=1]
 *                   [trace_out=quickstart_trace.json]
 *                   [stats_json=quickstart_stats.json] ...
 */

#include <cstdio>
#include <fstream>
#include <iostream>

#include "common/config.hh"
#include "common/strutil.hh"
#include "harness/experiment.hh"
#include "harness/table_printer.hh"

using namespace inpg;

namespace {

/** Leg share of the mean acquire, in percent. */
std::string
legPct(const LcoSummary &s, Cycle LcoLegs::*leg)
{
    if (s.totalLatency == 0)
        return "-";
    return fixed(100.0 * static_cast<double>(s.legs.*leg) /
                     static_cast<double>(s.totalLatency),
                 1);
}

} // namespace

int
main(int argc, char **argv)
{
    Config overrides;
    overrides.loadArgs(argc, argv);

    RunConfig rc;
    rc.profile =
        benchmarkByName(overrides.getString("benchmark", "face"));
    if (!overrides.has("lock"))
        rc.system.lockKind = LockKind::Tas;
    rc.system.telemetry.lco = true; // typed LCO attribution below
    rc.system.applyOverrides(overrides);
    rc.csScale = overrides.getDouble("cs_scale", 0.1);
    rc.traceOutPath =
        overrides.getString("trace_out", "quickstart_trace.json");
    const std::string stats_json =
        overrides.getString("stats_json", "quickstart_stats.json");

    std::cout << "iNPG quickstart -- benchmark '" << rc.profile.fullName
              << "' on a " << rc.system.noc.meshWidth << "x"
              << rc.system.noc.meshHeight << " many-core\n\n";
    std::cout << rc.system.describe() << "\n";

    TablePrinter table("Four comparative mechanisms (paper Sec. 5.1)");
    table.header({"mechanism", "ROI cycles", "rel. ROI", "CS time",
                  "CS speedup", "COH%", "CSE%", "early Invs",
                  "sleeps"});

    std::vector<RunResult> results = runAllMechanisms(rc);
    const double base_roi = static_cast<double>(results[0].roiCycles);
    const double base_cs =
        static_cast<double>(results[0].csTotalCycles());
    const int threads = rc.system.numCores();

    for (const auto &r : results) {
        table.row({
            mechanismName(r.mechanism),
            std::to_string(r.roiCycles),
            fixed(100.0 * static_cast<double>(r.roiCycles) / base_roi,
                  1) + "%",
            std::to_string(r.csTotalCycles()),
            fixed(base_cs / static_cast<double>(r.csTotalCycles()), 2) +
                "x",
            fixed(100.0 * r.phaseFraction(r.cohCycles, threads), 1),
            fixed(100.0 * r.phaseFraction(r.cseCycles, threads), 1),
            std::to_string(r.earlyInvs),
            std::to_string(r.sleeps),
        });
    }
    std::cout << "\n" << table.render() << "\n";

    // Per-acquire LCO attribution, straight off the typed summary.
    TablePrinter lco_table(
        "Lock-acquire latency attribution (% of mean acquire)");
    lco_table.header({"mechanism", "acquires", "mean cyc", "l1", "req",
                      "dir", "resp", "invack", "spin", "sleep",
                      "early-inv acq"});
    for (const auto &r : results) {
        const LcoSummary &s = r.lco;
        lco_table.row({
            mechanismName(r.mechanism),
            std::to_string(s.acquires),
            fixed(s.meanLatency(), 0),
            legPct(s, &LcoLegs::l1Access),
            legPct(s, &LcoLegs::reqNetwork),
            legPct(s, &LcoLegs::dirService),
            legPct(s, &LcoLegs::respNetwork),
            legPct(s, &LcoLegs::invAckWait),
            legPct(s, &LcoLegs::spinWait),
            legPct(s, &LcoLegs::sleepWait),
            std::to_string(s.acquiresWithEarlyInv),
        });
    }
    std::cout << lco_table.render() << "\n";

    if (!stats_json.empty()) {
        // Snapshot of the iNPG run (ALL_MECHANISMS order: index 2).
        std::ofstream out(stats_json);
        out << results[2].stats.dump(2) << "\n";
        std::cout << "Stats snapshot (iNPG run): " << stats_json
                  << "\n";
    }
    if (!rc.traceOutPath.empty()) {
        std::cout << "Chrome traces (load in Perfetto / "
                     "chrome://tracing): "
                  << traceOutPathFor(rc.traceOutPath,
                                     Mechanism::Original)
                  << " ... "
                  << traceOutPathFor(rc.traceOutPath,
                                     Mechanism::InpgOcor)
                  << "\n";
    }

    std::cout << "CS entries per run: " << results[0].csCompleted
              << " (cs_scale=" << rc.csScale << ")\n";
    if (results[0].csCompleted <
        static_cast<std::uint64_t>(5 * rc.system.numCores())) {
        std::cout << "NOTE: fewer than 5 CS per thread were simulated; "
                     "mechanism deltas at this scale are noise-"
                     "dominated. Use cs_scale=0.1 or higher (and "
                     "several seeds) for steadier comparisons.\n";
    }
    return 0;
}
