/**
 * @file
 * noc_traffic: exercise the Garnet-style NoC standalone with synthetic
 * traffic (uniform-random or hotspot) and report latency/throughput --
 * the classic interconnect bring-up experiment, and a direct view of
 * the congestion regime iNPG's home node lives in.
 *
 * Usage: noc_traffic [pattern=uniform|hotspot] [rate=0.05]
 *                    [cycles=20000] [mesh_width=8] [mesh_height=8]
 *                    [data_fraction=0.3] [hotspot_node=53]
 */

#include <cstdio>
#include <map>

#include "common/config.hh"
#include "common/histogram.hh"
#include "common/rng.hh"
#include "common/strutil.hh"
#include "noc/network.hh"
#include "sim/simulator.hh"

using namespace inpg;

int
main(int argc, char **argv)
{
    Config cfg;
    cfg.loadArgs(argc, argv);

    NocConfig noc;
    noc.meshWidth = static_cast<int>(cfg.getInt("mesh_width", 8));
    noc.meshHeight = static_cast<int>(cfg.getInt("mesh_height", 8));
    const std::string pattern = cfg.getString("pattern", "uniform");
    const double rate = cfg.getDouble("rate", 0.05);
    const Cycle cycles = static_cast<Cycle>(cfg.getInt("cycles", 20000));
    const double data_fraction = cfg.getDouble("data_fraction", 0.3);
    const NodeId hotspot =
        static_cast<NodeId>(cfg.getInt("hotspot_node", 53));

    Simulator sim;
    Network net(noc, sim);
    Histogram latency(5, 60);
    std::uint64_t delivered = 0;

    for (NodeId n = 0; n < net.numNodes(); ++n) {
        net.niFor(n).setDeliverCallback(
            n, [&latency, &delivered, &sim](const PacketPtr &pkt, Cycle) {
                latency.add(sim.now() - pkt->injectCycle);
                ++delivered;
            });
    }

    Rng rng(cfg.getInt("seed", 1));
    std::uint64_t injected = 0;
    const int n_nodes = net.numNodes();
    for (Cycle c = 0; c < cycles; ++c) {
        for (NodeId src = 0; src < n_nodes; ++src) {
            if (!rng.chance(rate))
                continue;
            NodeId dst;
            if (pattern == "hotspot" && rng.chance(0.5)) {
                dst = hotspot % n_nodes;
            } else {
                dst = static_cast<NodeId>(
                    rng.nextBounded(static_cast<std::uint64_t>(n_nodes)));
            }
            int flits = rng.chance(data_fraction) ? noc.dataPacketFlits
                                                  : noc.ctrlPacketFlits;
            net.inject(net.makePacket(src, dst,
                                      static_cast<VnetId>(
                                          rng.nextBounded(4)),
                                      flits),
                       sim.now());
            ++injected;
        }
        sim.step();
    }
    // Drain.
    Cycle drain_start = sim.now();
    while (!net.quiescent() && sim.now() < drain_start + 100000)
        sim.step();

    std::printf("noc_traffic -- %dx%d mesh, pattern=%s, rate=%.3f "
                "pkt/node/cycle, %llu cycles (+drain)\n\n",
                noc.meshWidth, noc.meshHeight, pattern.c_str(), rate,
                static_cast<unsigned long long>(cycles));
    std::printf("injected   : %llu packets\n",
                static_cast<unsigned long long>(injected));
    std::printf("delivered  : %llu packets (%s)\n",
                static_cast<unsigned long long>(delivered),
                delivered == injected ? "all accounted for"
                                      : "MISSING PACKETS");
    std::printf("latency    : mean %.1f  p95 %llu  max %llu cycles\n",
                latency.mean(),
                static_cast<unsigned long long>(latency.percentile(0.95)),
                static_cast<unsigned long long>(latency.max()));
    std::printf("throughput : %.3f delivered/node/cycle\n\n",
                static_cast<double>(delivered) /
                    static_cast<double>(n_nodes) /
                    static_cast<double>(sim.now()));
    std::printf("latency histogram:\n%s", latency.render().c_str());
    return delivered == injected ? 0 : 1;
}
