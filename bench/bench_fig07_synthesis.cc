/**
 * @file
 * Figure 7a -- module synthesis and layout results, from the analytical
 * synthesis model (substitution: no EDA flow here; the model is seeded
 * with the paper's reported TSMC 40nm constants and scales the packet
 * generator with the locking-barrier-table size). Also reports the
 * chip-level dynamic power of each big-router deployment of Fig. 14.
 */

#include "bench_util.hh"
#include "inpg/synthesis_model.hh"

using namespace inpg;

int
main(int argc, char **argv)
{
    BenchOptions opts = BenchOptions::parse(argc, argv);
    (void)opts;
    SynthesisModel model;

    std::printf("=== Figure 7a: module synthesis & layout (analytical "
                "model, TSMC 40nm LP seeds) ===\n\n");
    std::printf("%s\n", model.renderTable(16).c_str());

    TablePrinter pg("Packet generator vs locking-barrier-table size");
    pg.header({"entries", "gates (K)", "dyn. power (mW)",
               "router overhead"});
    for (std::size_t entries : {4u, 16u, 64u}) {
        ModuleSynthesis g = model.packetGenerator(entries);
        pg.row({std::to_string(entries), fixed(g.gatesK, 2),
                fixed(g.dynamicPowerMw, 2),
                pct(g.dynamicPowerMw /
                    model.normalRouter().dynamicPowerMw)});
    }
    std::printf("%s\n", pg.render().c_str());

    TablePrinter chip("64-core chip dynamic power by deployment");
    chip.header({"big routers", "chip power (mW)", "vs 0 BRs"});
    double base = model.chipPowerMw(64, 0, 16);
    for (int n : {0, 4, 16, 32, 64}) {
        double p = model.chipPowerMw(64, n, 16);
        chip.row({std::to_string(n), fixed(p, 1),
                  "+" + pct(p / base - 1.0, 2)});
    }
    std::printf("%s\n", chip.render().c_str());
    std::printf("Paper reference: normal router 19.9K gates / 84.2 mW; "
                "big router 22.4K gates / 92.6 mW; packet generator "
                "2.5K gates / 8.4 mW (+9.9%% router power).\n");
    return 0;
}
