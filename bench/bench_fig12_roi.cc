/**
 * @file
 * Figure 12 -- application Region-of-Interest finish time relative to
 * Original (100%) for the four mechanisms, per group and overall
 * (paper: OCOR 87.7%, iNPG 80.1%, iNPG+OCOR 75.3% overall; iNPG over
 * OCOR 7.8% avg / 14.7% max with bt331).
 */

#include "bench_util.hh"

using namespace inpg;

int
main(int argc, char **argv)
{
    BenchOptions opts = BenchOptions::parse(argc, argv);
    std::printf("=== Figure 12: relative ROI finish time (Original = "
                "100%%) ===\n\n");

    TablePrinter t("per-benchmark relative ROI finish time");
    t.header({"program", "group", "OCOR", "iNPG", "iNPG+OCOR",
              "iNPG vs OCOR"});

    const Mechanism mechs[] = {Mechanism::Ocor, Mechanism::Inpg,
                               Mechanism::InpgOcor};
    double group_sum[4][3] = {};
    int group_n[4] = {};
    double best_gain_vs_ocor = 0;
    std::string best_name;

    for (const auto &p : opts.benchmarks()) {
        SystemConfig sc = opts.systemConfig();
        AveragedResult base =
            runPoint(p, sc, Mechanism::Original, opts);
        double rel[3];
        std::vector<std::string> cells{p.fullName,
                                       std::to_string(p.group)};
        for (int i = 0; i < 3; ++i) {
            AveragedResult r = runPoint(p, sc, mechs[i], opts);
            rel[i] = r.roiCycles / base.roiCycles;
            cells.push_back(pct(rel[i]));
            group_sum[p.group][i] += rel[i];
        }
        double gain = 1.0 - rel[1] / rel[0];
        cells.push_back((gain >= 0 ? "-" : "+") +
                        pct(gain >= 0 ? gain : -gain));
        if (gain > best_gain_vs_ocor) {
            best_gain_vs_ocor = gain;
            best_name = p.fullName;
        }
        ++group_n[p.group];
        t.row(cells);
    }

    t.separator();
    int n_all = 0;
    double sum_all[3] = {};
    for (int g = 1; g <= 3; ++g) {
        if (group_n[g] == 0)
            continue;
        std::vector<std::string> cells{
            "Group " + std::to_string(g) + " avg", std::to_string(g)};
        for (int i = 0; i < 3; ++i) {
            cells.push_back(pct(group_sum[g][i] / group_n[g]));
            sum_all[i] += group_sum[g][i];
        }
        cells.push_back("");
        n_all += group_n[g];
        t.row(cells);
    }
    t.separator();
    std::vector<std::string> all{"ALL avg", "-"};
    for (int i = 0; i < 3; ++i)
        all.push_back(pct(sum_all[i] / n_all));
    double avg_gain = 1.0 - (sum_all[1] / n_all) / (sum_all[0] / n_all);
    all.push_back((avg_gain >= 0 ? "-" : "+") +
                  pct(avg_gain >= 0 ? avg_gain : -avg_gain));
    t.row(all);

    std::printf("%s\n", t.render().c_str());
    std::printf("iNPG improves ROI over OCOR by %.1f%% on average and "
                "%.1f%% at maximum (%s).\n",
                100.0 * avg_gain, 100.0 * best_gain_vs_ocor,
                best_name.c_str());
    std::printf("Paper reference: OCOR 87.7%%, iNPG 80.1%%, iNPG+OCOR "
                "75.3%% overall; group trends 1 < 2 < 3; iNPG over OCOR "
                "7.8%% avg / 14.7%% max (bt331).\n");
    return 0;
}
