/**
 * @file
 * Ablations of design constants the paper fixes without a figure:
 *  - barrier TTL (paper default 128 cycles): too short and barriers die
 *    between bursts; too long and stale barriers stop uncontended
 *    acquires;
 *  - spin interval of the polling loops;
 *  - QSL sleep/wakeup cost (the OS-path weight OCOR trades against).
 * Each sweep reports iNPG's ROI relative to Original on a contended
 * program, holding everything else at paper defaults.
 */

#include "bench_util.hh"

using namespace inpg;

int
main(int argc, char **argv)
{
    BenchOptions opts = BenchOptions::parse(argc, argv);
    const BenchmarkProfile &p = benchmarkByName(
        opts.overrides.getString("benchmark", "freq"));
    std::printf("=== Ablations (program '%s') ===\n\n",
                p.fullName.c_str());

    {
        TablePrinter t("barrier TTL (cycles) -- paper default 128");
        t.header({"TTL", "ROI Original", "ROI iNPG", "iNPG rel."});
        for (Cycle ttl : {16u, 64u, 128u, 512u}) {
            SystemConfig sc = opts.systemConfig();
            sc.inpg.barrierTtl = ttl;
            AveragedResult base =
                runPoint(p, sc, Mechanism::Original, opts);
            AveragedResult inpg = runPoint(p, sc, Mechanism::Inpg, opts);
            t.row({std::to_string(ttl), fixed(base.roiCycles, 0),
                   fixed(inpg.roiCycles, 0),
                   pct(inpg.roiCycles / base.roiCycles)});
        }
        std::printf("%s\n", t.render().c_str());
    }

    {
        TablePrinter t("spin interval (cycles) -- default 16");
        t.header({"interval", "ROI Original", "ROI iNPG", "iNPG rel."});
        for (Cycle si : {8u, 16u, 32u, 64u}) {
            SystemConfig sc = opts.systemConfig();
            sc.sync.spinInterval = si;
            AveragedResult base =
                runPoint(p, sc, Mechanism::Original, opts);
            AveragedResult inpg = runPoint(p, sc, Mechanism::Inpg, opts);
            t.row({std::to_string(si), fixed(base.roiCycles, 0),
                   fixed(inpg.roiCycles, 0),
                   pct(inpg.roiCycles / base.roiCycles)});
        }
        std::printf("%s\n", t.render().c_str());
    }

    {
        TablePrinter t("QSL context-switch + wakeup cost (cycles each)");
        t.header({"cost", "ROI Original", "sleeps", "ROI iNPG",
                  "iNPG rel."});
        for (Cycle cost : {500u, 1500u, 4000u}) {
            SystemConfig sc = opts.systemConfig();
            sc.sync.contextSwitchCost = cost;
            sc.sync.wakeupCost = cost;
            AveragedResult base =
                runPoint(p, sc, Mechanism::Original, opts);
            AveragedResult inpg = runPoint(p, sc, Mechanism::Inpg, opts);
            t.row({std::to_string(cost), fixed(base.roiCycles, 0),
                   fixed(base.sleeps, 0), fixed(inpg.roiCycles, 0),
                   pct(inpg.roiCycles / base.roiCycles)});
        }
        std::printf("%s\n", t.render().c_str());
    }
    return 0;
}
