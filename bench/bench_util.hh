/**
 * @file
 * Shared plumbing for the per-figure bench binaries: option parsing,
 * seed-averaged runs, and common formatting.
 *
 * Every bench accepts "key=value" arguments:
 *   cs_scale=<f>   fraction of the paper's per-thread CS count simulated
 *   seeds=<n>      runs averaged per data point (default 1)
 *   quick=1        reduced benchmark set for smoke runs
 *   mesh_width / mesh_height / big_routers / ... (see SystemConfig)
 */

#ifndef INPG_BENCH_BENCH_UTIL_HH
#define INPG_BENCH_BENCH_UTIL_HH

#include <cstdio>
#include <string>
#include <vector>

#include "common/config.hh"
#include "common/strutil.hh"
#include "harness/experiment.hh"
#include "harness/table_printer.hh"
#include "workload/benchmark_profile.hh"

namespace inpg {

/** Parsed bench options. */
struct BenchOptions {
    Config overrides;
    double csScale = 0.04;
    int seeds = 1;
    bool quick = false;

    static BenchOptions
    parse(int argc, char **argv)
    {
        BenchOptions o;
        o.overrides.loadArgs(argc, argv);
        o.csScale = o.overrides.getDouble("cs_scale", o.csScale);
        o.seeds = static_cast<int>(o.overrides.getInt("seeds", o.seeds));
        o.quick = o.overrides.getBool("quick", false);
        return o;
    }

    /** Base system config with command line overrides applied. */
    SystemConfig
    systemConfig() const
    {
        SystemConfig sc;
        sc.applyOverrides(overrides);
        return sc;
    }

    /** Benchmarks to sweep (subset under quick=1). */
    std::vector<BenchmarkProfile>
    benchmarks() const
    {
        if (!quick)
            return allBenchmarks();
        return {benchmarkByName("md"), benchmarkByName("freq"),
                benchmarkByName("kdtree")};
    }
};

/** Averages of the metrics the figures report. */
struct AveragedResult {
    double roiCycles = 0;
    double csTotalCycles = 0;
    double cohCycles = 0;
    double cseCycles = 0;
    double sleepCycles = 0;
    double parallelCycles = 0;
    double lockCohCycles = 0;
    double rttMean = 0;
    double rttMax = 0;
    double earlyInvs = 0;
    double sleeps = 0;
    double csCompleted = 0;
};

/** Run one (profile, mechanism) point, averaged over opts.seeds. */
inline AveragedResult
runPoint(const BenchmarkProfile &profile, SystemConfig sys,
         Mechanism mech, const BenchOptions &opts,
         NodeId lock_home = INVALID_NODE)
{
    AveragedResult avg;
    for (int s = 0; s < opts.seeds; ++s) {
        RunConfig rc;
        rc.profile = profile;
        rc.system = sys;
        rc.system.mechanism = mech;
        rc.system.seed = static_cast<std::uint64_t>(s) + 1;
        rc.csScale = opts.csScale;
        rc.lockHome = lock_home;
        RunResult r = runBenchmark(rc);
        avg.roiCycles += static_cast<double>(r.roiCycles);
        avg.csTotalCycles += static_cast<double>(r.csTotalCycles());
        avg.cohCycles += static_cast<double>(r.cohCycles);
        avg.cseCycles += static_cast<double>(r.cseCycles);
        avg.sleepCycles += static_cast<double>(r.sleepCycles);
        avg.parallelCycles += static_cast<double>(r.parallelCycles);
        avg.lockCohCycles += static_cast<double>(r.lockCohCycles);
        avg.rttMean += r.rttMean;
        avg.rttMax += static_cast<double>(r.rttMax);
        avg.earlyInvs += static_cast<double>(r.earlyInvs);
        avg.sleeps += static_cast<double>(r.sleeps);
        avg.csCompleted += static_cast<double>(r.csCompleted);
    }
    const double n = static_cast<double>(opts.seeds);
    avg.roiCycles /= n;
    avg.csTotalCycles /= n;
    avg.cohCycles /= n;
    avg.cseCycles /= n;
    avg.sleepCycles /= n;
    avg.parallelCycles /= n;
    avg.lockCohCycles /= n;
    avg.rttMean /= n;
    avg.rttMax /= n;
    avg.earlyInvs /= n;
    avg.sleeps /= n;
    avg.csCompleted /= n;
    return avg;
}

/** Geometric-ish pretty ratio "1.35x". */
inline std::string
ratio(double base, double value, int decimals = 2)
{
    return fixed(value > 0 ? base / value : 0, decimals) + "x";
}

/** Percentage "87.7%". */
inline std::string
pct(double fraction, int decimals = 1)
{
    return fixed(100.0 * fraction, decimals) + "%";
}

} // namespace inpg

#endif // INPG_BENCH_BENCH_UTIL_HH
