/**
 * @file
 * Figure 2 -- percentage of lock coherence overhead (LCO) in
 * application running time under TAS, TTL, ABQL, MCS and QSL for
 * kdtree (OMP2012), facesim and fluidanimate (PARSEC).
 *
 * Paper shapes to hold: TAS has the highest LCO share, TTL/ABQL are
 * intermediate, MCS and QSL the lowest; facesim is the most
 * LCO-bound program of the three.
 */

#include "bench_util.hh"

using namespace inpg;

int
main(int argc, char **argv)
{
    BenchOptions opts = BenchOptions::parse(argc, argv);
    const LockKind kinds[] = {LockKind::Tas, LockKind::Ticket,
                              LockKind::Abql, LockKind::Mcs,
                              LockKind::Qsl};
    const char *programs[] = {"kdtree", "face", "fluid"};

    std::printf("=== Figure 2: %% LCO in application running time "
                "(Original) ===\n\n");
    TablePrinter t("LCO% = lock-coherence cycles / (threads x ROI)");
    t.header({"benchmark", "TAS", "TTL", "ABQL", "MCS", "QSL"});

    for (const char *prog : programs) {
        // The paper measures the LCO of "the critical section lock":
        // concentrate each program's CS traffic on its dominant lock.
        BenchmarkProfile p = benchmarkByName(prog);
        p.numLocks = 1;
        std::vector<std::string> cells{p.fullName};
        for (LockKind k : kinds) {
            SystemConfig sc = opts.systemConfig();
            sc.lockKind = k;
            AveragedResult r =
                runPoint(p, sc, Mechanism::Original, opts);
            double lco = r.lockCohCycles /
                         (r.roiCycles *
                          static_cast<double>(sc.numCores()));
            cells.push_back(pct(lco));
        }
        t.row(cells);
    }
    std::printf("%s\n", t.render().c_str());
    std::printf("Paper reference: kdtree 50/31/27/14/17%%, facesim "
                "90/57/56/30/32%%, fluidanimate 65/47/50/20/25%%.\n");
    return 0;
}
