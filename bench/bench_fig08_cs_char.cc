/**
 * @file
 * Figure 8 -- critical-section characteristics of the 24 programs:
 * (a) total CS count and mean cycles per CS, (b) the breakdown of the
 * total CS time into competition overhead (COH) and CS execution
 * (CSE), with the group assignment used by Figures 11/12/14.
 */

#include <algorithm>

#include "bench_util.hh"

using namespace inpg;

int
main(int argc, char **argv)
{
    BenchOptions opts = BenchOptions::parse(argc, argv);

    struct Row {
        BenchmarkProfile p;
        AveragedResult r;
        double csTotal;
    };
    std::vector<Row> rows;
    for (const auto &p : opts.benchmarks()) {
        SystemConfig sc = opts.systemConfig();
        Row row{p, runPoint(p, sc, Mechanism::Original, opts), 0};
        row.csTotal = row.r.cohCycles + row.r.cseCycles;
        rows.push_back(row);
    }
    std::sort(rows.begin(), rows.end(),
              [](const Row &a, const Row &b) {
                  return a.csTotal < b.csTotal;
              });

    std::printf("=== Figure 8a: total CS accesses & mean cycles per CS "
                "===\n\n");
    TablePrinter a("programs sorted by total CS time (ascending)");
    a.header({"program", "suite", "group", "CS accesses (paper)",
              "CS simulated", "mean CS cycles"});
    for (const auto &row : rows) {
        double mean_cse = row.r.csCompleted > 0
            ? row.r.cseCycles / row.r.csCompleted
            : 0;
        a.row({row.p.fullName,
               row.p.suite == Suite::Parsec ? "PARSEC" : "OMP2012",
               std::to_string(row.p.group),
               std::to_string(row.p.totalCs),
               fixed(row.r.csCompleted, 0), fixed(mean_cse, 1)});
    }
    std::printf("%s\n", a.render().c_str());

    std::printf("=== Figure 8b: COH vs CSE breakdown of total CS time "
                "===\n\n");
    TablePrinter b("COH dominates CSE (paper's central observation)");
    b.header({"program", "group", "COH (thread-cycles)",
              "CSE (thread-cycles)", "COH share"});
    double coh_sum = 0;
    double cse_sum = 0;
    for (const auto &row : rows) {
        coh_sum += row.r.cohCycles;
        cse_sum += row.r.cseCycles;
        b.row({row.p.fullName, std::to_string(row.p.group),
               fixed(row.r.cohCycles, 0), fixed(row.r.cseCycles, 0),
               pct(row.r.cohCycles / (row.r.cohCycles + row.r.cseCycles))});
    }
    b.separator();
    b.row({"ALL", "-", fixed(coh_sum, 0), fixed(cse_sum, 0),
           pct(coh_sum / (coh_sum + cse_sum))});
    std::printf("%s\n", b.render().c_str());
    std::printf("Shape to hold: COH > CSE for nearly every program, and "
                "group 3 programs carry the largest totals.\n");
    return 0;
}
