/**
 * @file
 * Figure 14 -- sensitivity to big-router deployment: CS expedition
 * with 0 / 4 / 16 / 32 / 64 big routers distributed evenly on the 8x8
 * mesh (paper: expedition grows with the count but saturates -- 32 big
 * routers achieve nearly the benefit of 64).
 */

#include "bench_util.hh"

using namespace inpg;

int
main(int argc, char **argv)
{
    BenchOptions opts = BenchOptions::parse(argc, argv);
    std::printf("=== Figure 14: CS expedition vs number of big routers "
                "===\n\n");

    const int deployments[] = {0, 4, 16, 32, 64};
    // One representative program per group plus the two headline ones.
    std::vector<std::string> programs =
        opts.quick ? std::vector<std::string>{"freq", "kdtree"}
                   : std::vector<std::string>{"md", "dedup", "freq",
                                              "face", "kdtree", "nab"};

    TablePrinter t("CS-time speedup over 0 big routers");
    t.header({"program", "0", "4", "16", "32", "64"});

    std::vector<double> avg(5, 0);
    for (const auto &name : programs) {
        const BenchmarkProfile &p = benchmarkByName(name);
        std::vector<std::string> cells{p.fullName};
        double base_cs = 0;
        for (int i = 0; i < 5; ++i) {
            SystemConfig sc = opts.systemConfig();
            sc.inpg.numBigRouters = deployments[i];
            AveragedResult r = runPoint(
                p, sc,
                deployments[i] == 0 ? Mechanism::Original
                                    : Mechanism::Inpg,
                opts);
            if (i == 0)
                base_cs = r.csTotalCycles;
            double x = base_cs / r.csTotalCycles;
            avg[static_cast<std::size_t>(i)] += x;
            cells.push_back(fixed(x, 2) + "x");
        }
        t.row(cells);
    }
    t.separator();
    std::vector<std::string> cells{"AVG"};
    for (int i = 0; i < 5; ++i)
        cells.push_back(
            fixed(avg[static_cast<std::size_t>(i)] /
                      static_cast<double>(programs.size()), 2) + "x");
    t.row(cells);
    std::printf("%s\n", t.render().c_str());
    std::printf("Shape to hold: monotone improvement with diminishing "
                "returns; 32 big routers approach the 64-router "
                "benefit (the paper's chosen deployment).\n");
    return 0;
}
