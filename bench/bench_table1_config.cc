/**
 * @file
 * Table 1 -- simulation platform configuration. Prints the exact
 * parameters of each of the four comparative cases as built by the
 * harness (the runtime counterpart of the paper's configuration table).
 */

#include "bench_util.hh"

using namespace inpg;

int
main(int argc, char **argv)
{
    BenchOptions opts = BenchOptions::parse(argc, argv);
    std::printf("=== Table 1: simulation platform configurations ===\n\n");

    TablePrinter t("Platform (paper Table 1)");
    t.header({"item", "amount", "description"});
    SystemConfig sc = opts.systemConfig();
    sc.finalize();
    t.row({"Core", std::to_string(sc.numCores()) + " cores",
           "in-order lock/compute thread model @ 2.0 GHz"});
    t.row({"L1-Cache", std::to_string(sc.numCores()) + " banks",
           "private, " + std::to_string(sc.coh.lineSize) + " B blocks, " +
               std::to_string(sc.coh.l1Latency) + "-cycle latency"});
    t.row({"L2-Cache", std::to_string(sc.numCores()) + " banks",
           "shared, directory MOESI, " +
               std::to_string(sc.coh.l2Latency) + "-cycle latency"});
    t.row({"Memory", "8 ranks",
           std::to_string(sc.coh.memLatency) +
               "-cycle DRAM, 8 memory controllers"});
    t.row({"NoC", std::to_string(sc.numCores()) + " nodes",
           std::to_string(sc.noc.meshWidth) + "x" +
               std::to_string(sc.noc.meshHeight) +
               " mesh, XY routing, 2-stage routers, " +
               std::to_string(sc.noc.vcsPerVnet) + " VCs/vnet x " +
               std::to_string(sc.noc.numVnets) + " vnets, " +
               std::to_string(sc.noc.vcDepth) + " flits/VC, 128-bit"});
    t.row({"OCOR", "-",
           std::to_string(sc.sync.ocor.priorityLevels) +
               " priority levels, " +
               std::to_string(sc.sync.ocor.retriesPerLevel) +
               " retries/level, " +
               std::to_string(sc.sync.qslRetryLimit) + " retry budget"});
    t.row({"iNPG", "-",
           std::to_string(sc.inpg.numBigRouters) + " big routers, " +
               std::to_string(sc.inpg.barrierEntries) +
               "-entry locking barrier table, TTL " +
               std::to_string(sc.inpg.barrierTtl)});
    std::printf("%s\n", t.render().c_str());

    for (Mechanism m : ALL_MECHANISMS) {
        SystemConfig c = opts.systemConfig();
        c.mechanism = m;
        c.finalize();
        std::printf("--- Case %s ---\n%s\n", mechanismName(m),
                    c.describe().c_str());
    }
    return 0;
}
