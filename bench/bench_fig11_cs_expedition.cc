/**
 * @file
 * Figure 11 -- critical-section expedition (COH+CSE speedup over
 * Original) achieved by OCOR, iNPG and iNPG+OCOR across all 24
 * programs, reported per group and overall (paper: OCOR 1.45x avg,
 * iNPG 1.98x avg / 3.48x max on nab, combined 2.71x avg).
 */

#include "bench_util.hh"

using namespace inpg;

int
main(int argc, char **argv)
{
    BenchOptions opts = BenchOptions::parse(argc, argv);
    std::printf("=== Figure 11: critical section expedition (relative "
                "CS-time improvement over Original) ===\n\n");

    TablePrinter t("per-benchmark CS expedition");
    t.header({"program", "group", "OCOR", "iNPG", "iNPG+OCOR"});

    const Mechanism mechs[] = {Mechanism::Ocor, Mechanism::Inpg,
                               Mechanism::InpgOcor};
    double group_sum[4][3] = {};
    int group_n[4] = {};
    double best[3] = {};
    std::string best_name[3];

    for (const auto &p : opts.benchmarks()) {
        SystemConfig sc = opts.systemConfig();
        AveragedResult base =
            runPoint(p, sc, Mechanism::Original, opts);
        std::vector<std::string> cells{p.fullName,
                                       std::to_string(p.group)};
        for (int i = 0; i < 3; ++i) {
            AveragedResult r = runPoint(p, sc, mechs[i], opts);
            double x = r.csTotalCycles > 0
                ? base.csTotalCycles / r.csTotalCycles
                : 0;
            cells.push_back(fixed(x, 2) + "x");
            group_sum[p.group][i] += x;
            if (x > best[i]) {
                best[i] = x;
                best_name[i] = p.fullName;
            }
        }
        ++group_n[p.group];
        t.row(cells);
    }

    t.separator();
    int n_all = 0;
    double sum_all[3] = {};
    for (int g = 1; g <= 3; ++g) {
        if (group_n[g] == 0)
            continue;
        std::vector<std::string> cells{
            "Group " + std::to_string(g) + " avg", std::to_string(g)};
        for (int i = 0; i < 3; ++i) {
            cells.push_back(
                fixed(group_sum[g][i] / group_n[g], 2) + "x");
            sum_all[i] += group_sum[g][i];
        }
        n_all += group_n[g];
        t.row(cells);
    }
    t.separator();
    std::vector<std::string> all{"ALL avg", "-"};
    for (int i = 0; i < 3; ++i)
        all.push_back(fixed(sum_all[i] / n_all, 2) + "x");
    t.row(all);

    std::printf("%s\n", t.render().c_str());
    std::printf("Maxima: OCOR %.2fx (%s), iNPG %.2fx (%s), iNPG+OCOR "
                "%.2fx (%s)\n",
                best[0], best_name[0].c_str(), best[1],
                best_name[1].c_str(), best[2], best_name[2].c_str());
    std::printf("iNPG over OCOR: %.2fx average CS expedition.\n",
                (sum_all[1] / n_all) / (sum_all[0] / n_all));
    std::printf("Paper reference: OCOR 1.45x avg (max 1.90x, dedup); "
                "iNPG 1.98x avg (max 3.48x, nab); combined 2.71x avg "
                "(max 5.45x, nab); iNPG over OCOR 1.35x avg.\n");
    return 0;
}
