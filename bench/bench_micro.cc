/**
 * @file
 * Micro-benchmarks (google-benchmark) of the simulator's hot
 * components: router pipeline throughput, barrier table operations,
 * directory processing, arbiters and the event queue. These bound the
 * wall-clock cost of the figure-level benches.
 */

#include <benchmark/benchmark.h>

#include "coh/coherent_system.hh"
#include "common/histogram.hh"
#include "common/rng.hh"
#include "inpg/lock_barrier_table.hh"
#include "noc/arbiter.hh"
#include "noc/network.hh"
#include "sim/simulator.hh"

using namespace inpg;

static void
BM_RouterIdleTick(benchmark::State &state)
{
    NocConfig cfg;
    cfg.meshWidth = 8;
    cfg.meshHeight = 8;
    Simulator sim;
    Network net(cfg, sim);
    for (auto _ : state)
        sim.step();
    state.SetItemsProcessed(state.iterations() *
                            static_cast<std::int64_t>(cfg.numNodes()));
}
BENCHMARK(BM_RouterIdleTick);

static void
BM_NetworkUniformTraffic(benchmark::State &state)
{
    NocConfig cfg;
    cfg.meshWidth = 8;
    cfg.meshHeight = 8;
    Simulator sim;
    Network net(cfg, sim);
    for (NodeId n = 0; n < net.numNodes(); ++n)
        net.ni(n).setDeliverCallback([](const PacketPtr &, Cycle) {});
    Rng rng(7);
    for (auto _ : state) {
        // One random single-flit packet injected per cycle.
        NodeId s = static_cast<NodeId>(rng.nextBounded(64));
        NodeId d = static_cast<NodeId>(rng.nextBounded(64));
        net.inject(net.makePacket(s, d, 0, 1), sim.now());
        sim.step();
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_NetworkUniformTraffic);

static void
BM_CoherentSystemTick(benchmark::State &state)
{
    NocConfig noc;
    noc.meshWidth = 8;
    noc.meshHeight = 8;
    CohConfig coh;
    Simulator sim;
    CoherentSystem sys(noc, coh, sim);
    // Sustained load/stores from 8 cores.
    for (CoreId c = 0; c < 8; ++c) {
        auto loop = std::make_shared<std::function<void()>>();
        Addr a = coh.lineHomedAt(c * 7 % 64);
        *loop = [&sys, a, c, loop] {
            sys.l1(c).issueStore(a, 1, false,
                                 [loop](std::uint64_t) { (*loop)(); });
        };
        (*loop)();
    }
    for (auto _ : state)
        sim.step();
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CoherentSystemTick);

static void
BM_BarrierTableLookup(benchmark::State &state)
{
    LockBarrierTable table(16, 16, 128);
    for (int i = 0; i < 16; ++i)
        table.createBarrier(static_cast<Addr>(i) * 128, 0);
    Cycle now = 1;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            table.hasBarrier(static_cast<Addr>(now % 20) * 128, 0));
        ++now;
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BarrierTableLookup);

static void
BM_BarrierEiLifecycle(benchmark::State &state)
{
    LockBarrierTable table(16, 16, 1u << 30);
    table.createBarrier(0x100, 0);
    Cycle now = 1;
    for (auto _ : state) {
        table.addEi(0x100, static_cast<CoreId>(now % 16), now);
        table.completeEi(0x100, static_cast<CoreId>(now % 16), now);
        ++now;
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BarrierEiLifecycle);

static void
BM_PriorityArbiter(benchmark::State &state)
{
    PriorityArbiter arb(8, 64);
    std::vector<PriorityArbiter::Request> reqs(8);
    Rng rng(3);
    for (auto &r : reqs) {
        r.valid = rng.chance(0.5);
        r.priority = static_cast<int>(rng.nextBounded(9));
    }
    for (auto _ : state)
        benchmark::DoNotOptimize(arb.grant(reqs));
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PriorityArbiter);

static void
BM_EventQueue(benchmark::State &state)
{
    EventQueue q;
    Cycle now = 0;
    int sink = 0;
    for (auto _ : state) {
        q.schedule(now + 5, [&sink] { ++sink; });
        q.runDue(now);
        ++now;
    }
    benchmark::DoNotOptimize(sink);
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EventQueue);

static void
BM_HistogramAdd(benchmark::State &state)
{
    Histogram h(5, 40);
    Rng rng(11);
    for (auto _ : state)
        h.add(rng.nextBounded(250));
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HistogramAdd);

BENCHMARK_MAIN();
