/**
 * @file
 * Micro-benchmarks (google-benchmark) of the simulator's hot
 * components: router pipeline throughput, barrier table operations,
 * directory processing, arbiters and the event queue. These bound the
 * wall-clock cost of the figure-level benches.
 *
 * `bench_micro --json [--out FILE] [--hotpath-out FILE]` instead runs
 * two A/B measurements and emits JSON:
 *  - the kernel fast-forward A/B (one long-CS lock-contention workload
 *    with idle fast-forwarding off and on), written to --out;
 *  - the hot-path A/B (a busy TAS spin-contention workload that
 *    fast-forward cannot elide, run on the reference structures --
 *    binary-heap scheduler with boxed callbacks, node-based map
 *    containers, virtual per-flit route calls -- and again on the
 *    optimized ones: timing wheel + SBO callbacks, flat-hash tables,
 *    precomputed route tables), written to --hotpath-out, including
 *    events/sec, schedule-path heap-allocation counts, a
 *    per-subsystem wall-clock phase split, a fabric-comparison
 *    `topology` section (8x8 mesh vs torus vs cmesh:4x4x4 at equal
 *    core count, each re-checked bit-identical under threads=2) and
 *    the thread-scaling `parallel` section.
 * The `perf-smoke` ctest target drives this mode.
 */

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>

#include "coh/coherent_system.hh"
#include "common/histogram.hh"
#include "common/rng.hh"
#include "harness/system.hh"
#include "inpg/lock_barrier_table.hh"
#include "noc/arbiter.hh"
#include "noc/flit_pool.hh"
#include "noc/network.hh"
#include "noc/topology.hh"
#include "sim/simulator.hh"
#include "workload/benchmark_profile.hh"
#include "workload/workload.hh"

using namespace inpg;

static void
BM_RouterIdleTick(benchmark::State &state)
{
    NocConfig cfg;
    cfg.meshWidth = 8;
    cfg.meshHeight = 8;
    Simulator sim;
    Network net(cfg, sim);
    for (auto _ : state)
        sim.step();
    state.SetItemsProcessed(state.iterations() *
                            static_cast<std::int64_t>(cfg.numNodes()));
}
BENCHMARK(BM_RouterIdleTick);

static void
BM_NetworkUniformTraffic(benchmark::State &state)
{
    NocConfig cfg;
    cfg.meshWidth = 8;
    cfg.meshHeight = 8;
    Simulator sim;
    Network net(cfg, sim);
    for (NodeId n = 0; n < net.numNodes(); ++n)
        net.niFor(n).setDeliverCallback(n,
                                        [](const PacketPtr &, Cycle) {});
    Rng rng(7);
    for (auto _ : state) {
        // One random single-flit packet injected per cycle.
        NodeId s = static_cast<NodeId>(rng.nextBounded(64));
        NodeId d = static_cast<NodeId>(rng.nextBounded(64));
        net.inject(net.makePacket(s, d, 0, 1), sim.now());
        sim.step();
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_NetworkUniformTraffic);

static void
BM_CoherentSystemTick(benchmark::State &state)
{
    NocConfig noc;
    noc.meshWidth = 8;
    noc.meshHeight = 8;
    CohConfig coh;
    Simulator sim;
    CoherentSystem sys(noc, coh, sim);
    // Sustained load/stores from 8 cores.
    for (CoreId c = 0; c < 8; ++c) {
        auto loop = std::make_shared<std::function<void()>>();
        Addr a = coh.lineHomedAt(c * 7 % 64);
        *loop = [&sys, a, c, loop] {
            sys.l1(c).issueStore(a, 1, false,
                                 [loop](std::uint64_t) { (*loop)(); });
        };
        (*loop)();
    }
    for (auto _ : state)
        sim.step();
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CoherentSystemTick);

static void
BM_BarrierTableLookup(benchmark::State &state)
{
    LockBarrierTable table(16, 16, 128);
    for (int i = 0; i < 16; ++i)
        table.createBarrier(static_cast<Addr>(i) * 128, 0);
    Cycle now = 1;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            table.hasBarrier(static_cast<Addr>(now % 20) * 128, 0));
        ++now;
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BarrierTableLookup);

static void
BM_BarrierEiLifecycle(benchmark::State &state)
{
    LockBarrierTable table(16, 16, 1u << 30);
    table.createBarrier(0x100, 0);
    Cycle now = 1;
    for (auto _ : state) {
        table.addEi(0x100, static_cast<CoreId>(now % 16), now);
        table.completeEi(0x100, static_cast<CoreId>(now % 16), now);
        ++now;
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BarrierEiLifecycle);

static void
BM_PriorityArbiter(benchmark::State &state)
{
    PriorityArbiter arb(8, 64);
    std::vector<PriorityArbiter::Request> reqs(8);
    Rng rng(3);
    for (auto &r : reqs) {
        r.valid = rng.chance(0.5);
        r.priority = static_cast<int>(rng.nextBounded(9));
    }
    for (auto _ : state)
        benchmark::DoNotOptimize(arb.grant(reqs));
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PriorityArbiter);

static void
BM_EventQueue(benchmark::State &state)
{
    EventQueue q;
    Cycle now = 0;
    int sink = 0;
    for (auto _ : state) {
        q.schedule(now + 5, [&sink] { ++sink; });
        q.runDue(now);
        ++now;
    }
    benchmark::DoNotOptimize(sink);
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EventQueue);

static void
BM_HistogramAdd(benchmark::State &state)
{
    Histogram h(5, 40);
    Rng rng(11);
    for (auto _ : state)
        h.add(rng.nextBounded(250));
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HistogramAdd);

// ---------------------------------------------------------------------
// --json mode: kernel fast-forward A/B on a long-CS contention workload
// ---------------------------------------------------------------------

namespace {

/**
 * Provenance stamp emitted into every BENCH_*.json: the commit the
 * numbers were measured at (INPG_GIT_SHA, exported by run_benches.sh),
 * the build flavor, the compiler, and the workload's config flags.
 * Perf results are only comparable within one (sha, flavor) pair.
 */
void
emitMeta(std::FILE *out, const char *config_flags)
{
#ifndef INPG_BENCH_BUILD_FLAVOR
#define INPG_BENCH_BUILD_FLAVOR "unknown"
#endif
    const char *sha = std::getenv("INPG_GIT_SHA");
    const char *dirty = std::getenv("INPG_GIT_DIRTY");
    const char *ledger = std::getenv("INPG_LEDGER_PATH");
    std::fprintf(out,
                 "  \"meta\": {\n"
                 "    \"git_sha\": \"%s\",\n"
                 "    \"dirty\": %s,\n"
                 "    \"build_flavor\": \"%s\",\n"
                 "    \"compiler\": \"%s\",\n"
                 "    \"hw_threads\": %u,\n"
                 "    \"ledger\": \"%s\",\n"
                 "    \"config_flags\": \"%s\"\n"
                 "  },\n",
                 sha && *sha ? sha : "unknown",
                 dirty && std::strcmp(dirty, "1") == 0 ? "true"
                                                       : "false",
                 INPG_BENCH_BUILD_FLAVOR, __VERSION__,
                 std::thread::hardware_concurrency(),
                 ledger && *ledger ? ledger : "",
                 config_flags);
}

struct KernelRunMetrics {
    Cycle simCycles = 0;
    Cycle roiCycles = 0;
    std::uint64_t csCompleted = 0;
    std::uint64_t ffCycles = 0;
    std::uint64_t ffJumps = 0;
    double wallNs = 0;

    double
    nsPerCycle() const
    {
        return simCycles ? wallNs / static_cast<double>(simCycles) : 0;
    }
};

/**
 * 16 QSL threads contending on one lock with long CS bodies: while the
 * holder executes its critical section every waiter sleeps, so the
 * fabric goes fully idle between protocol bursts -- the workload class
 * the fast-forward kernel targets.
 */
BenchmarkProfile
longCsProfile()
{
    BenchmarkProfile p = benchmarkByName("imag");
    p.name = "long_cs_contention";
    p.totalCs = 256;
    p.avgCsCycles = 3000;
    p.avgParallelCycles = 1500;
    p.numLocks = 1;
    p.memGapCycles = 0; // no background traffic: pure lock contention
    return p;
}

KernelRunMetrics
runKernelWorkload(bool fast_forward)
{
    SystemConfig cfg;
    cfg.noc.meshWidth = 4;
    cfg.noc.meshHeight = 4;
    cfg.lockKind = LockKind::Qsl;
    cfg.finalize();

    System system(cfg);
    system.sim().setFastForward(fast_forward);

    Workload::Params wp;
    wp.profile = longCsProfile();
    wp.threads = cfg.numCores();
    wp.csScale = 1.0;
    wp.lockKind = cfg.lockKind;
    wp.seed = cfg.seed;
    Workload workload(wp, system.coherent(), system.locks(),
                      system.sim());

    const auto t0 = std::chrono::steady_clock::now();
    workload.start();
    system.runUntil([&] { return workload.done(); });
    const auto t1 = std::chrono::steady_clock::now();

    KernelRunMetrics m;
    m.simCycles = system.sim().now();
    m.roiCycles = workload.roiFinish();
    m.csCompleted = workload.csCompleted();
    m.ffCycles = system.sim().cyclesFastForwarded();
    m.ffJumps = system.sim().fastForwardJumps();
    m.wallNs = static_cast<double>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
            .count());
    return m;
}

void
printKernelJson(std::FILE *out, const KernelRunMetrics &off,
                const KernelRunMetrics &on, const FlitPool &pool)
{
    auto emitRun = [out](const char *label, const KernelRunMetrics &m) {
        std::fprintf(out,
                     "    \"%s\": {\n"
                     "      \"sim_cycles\": %llu,\n"
                     "      \"roi_cycles\": %llu,\n"
                     "      \"cs_completed\": %llu,\n"
                     "      \"wall_ns\": %.0f,\n"
                     "      \"ns_per_sim_cycle\": %.3f,\n"
                     "      \"cycles_fast_forwarded\": %llu,\n"
                     "      \"fast_forward_jumps\": %llu\n"
                     "    }",
                     label,
                     static_cast<unsigned long long>(m.simCycles),
                     static_cast<unsigned long long>(m.roiCycles),
                     static_cast<unsigned long long>(m.csCompleted),
                     m.wallNs, m.nsPerCycle(),
                     static_cast<unsigned long long>(m.ffCycles),
                     static_cast<unsigned long long>(m.ffJumps));
    };

    const bool identical = off.roiCycles == on.roiCycles &&
                           off.csCompleted == on.csCompleted &&
                           off.simCycles == on.simCycles;
    const double speedup = on.wallNs > 0 ? off.wallNs / on.wallNs : 0;

    std::fprintf(out, "{\n"
                      "  \"bench\": \"kernel_fast_forward\",\n");
    emitMeta(out, "mesh=4x4 lock=qsl cs_scale=1.0 seed=1");
    std::fprintf(out, "  \"workload\": \"long_cs_contention\",\n"
                      "  \"mesh\": \"4x4\",\n"
                      "  \"lock\": \"qsl\",\n"
                      "  \"runs\": {\n");
    emitRun("fast_forward_off", off);
    std::fprintf(out, ",\n");
    emitRun("fast_forward_on", on);
    std::fprintf(out,
                 "\n  },\n"
                 "  \"speedup\": %.2f,\n"
                 "  \"bit_identical\": %s,\n"
                 "  \"flit_pool\": {\n"
                 "    \"allocated\": %llu,\n"
                 "    \"reused\": %llu,\n"
                 "    \"hit_rate\": %.4f\n"
                 "  }\n"
                 "}\n",
                 speedup, identical ? "true" : "false",
                 static_cast<unsigned long long>(pool.allocated()),
                 static_cast<unsigned long long>(pool.reused()),
                 pool.hitRate());
}

// ---------------------------------------------------------------------
// Hot-path A/B: busy TAS contention, reference vs optimized structures
// ---------------------------------------------------------------------

/**
 * Process CPU time in nanoseconds: immune to other processes on a
 * loaded host, which wall clocks are not (the hotpath A/B compares
 * ~100 ms runs, well under typical scheduler noise).
 */
double
cpuNowNs()
{
    timespec ts{};
    clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &ts);
    return static_cast<double>(ts.tv_sec) * 1e9 +
           static_cast<double>(ts.tv_nsec);
}

struct HotpathMetrics {
    Cycle simCycles = 0;
    Cycle roiCycles = 0;
    std::uint64_t csCompleted = 0;
    std::uint64_t ffCycles = 0;
    double cpuNs = 0;
    std::uint64_t eventsScheduled = 0;
    std::uint64_t eventsExecuted = 0;
    std::uint64_t scheduleHeapAllocs = 0;

    double
    eventsPerSec() const
    {
        return cpuNs > 0 ? static_cast<double>(eventsExecuted) * 1e9 /
                               cpuNs
                         : 0;
    }
};

/**
 * 16 TAS threads hammering one lock with short critical sections: the
 * spinners keep the fabric saturated, so fast-forward elides nothing
 * and wall-clock time is pure hot-path cost (scheduler, directory and
 * L1 lookups, route computation).
 */
BenchmarkProfile
busySpinProfile()
{
    BenchmarkProfile p = benchmarkByName("imag");
    p.name = "busy_spin_contention";
    p.totalCs = 384;
    p.avgCsCycles = 200;
    p.avgParallelCycles = 100;
    p.numLocks = 1;
    p.memGapCycles = 0;
    return p;
}

HotpathMetrics
runHotpathWorkload(bool optimized, Simulator::HostPhaseProfile *profile,
                   int mesh = 4)
{
    SystemConfig cfg;
    cfg.noc.meshWidth = mesh;
    cfg.noc.meshHeight = mesh;
    cfg.lockKind = LockKind::Tas;
    cfg.impl = optimized ? ImplMode::Fast : ImplMode::Reference;
    cfg.finalize();

    System system(cfg);
    system.sim().setHostProfile(profile);

    Workload::Params wp;
    wp.profile = busySpinProfile();
    wp.threads = cfg.numCores();
    wp.csScale = 1.0;
    wp.lockKind = cfg.lockKind;
    wp.seed = cfg.seed;
    Workload workload(wp, system.coherent(), system.locks(),
                      system.sim());

    const double t0 = cpuNowNs();
    workload.start();
    system.runUntil([&] { return workload.done(); });
    const double t1 = cpuNowNs();

    HotpathMetrics m;
    m.simCycles = system.sim().now();
    m.roiCycles = workload.roiFinish();
    m.csCompleted = workload.csCompleted();
    m.ffCycles = system.sim().cyclesFastForwarded();
    m.cpuNs = t1 - t0;
    m.eventsScheduled = system.sim().events().scheduledTotal();
    m.eventsExecuted = system.sim().events().executedTotal();
    m.scheduleHeapAllocs = system.sim().events().scheduleHeapAllocs();
    return m;
}

/**
 * Wall-clock nanoseconds for the thread-scaling curve: intra-run
 * parallelism trades total CPU time for latency, so CPU time (which
 * sums across workers) would hide the very effect being measured.
 */
double
wallNowNs()
{
    timespec ts{};
    clock_gettime(CLOCK_MONOTONIC, &ts);
    return static_cast<double>(ts.tv_sec) * 1e9 +
           static_cast<double>(ts.tv_nsec);
}

/**
 * One busy-spin run at a given mesh radix and kernel thread count for
 * the scaling curve. Same workload class as the hotpath A/B; csScale
 * trims the 16x16 runs to bench-friendly lengths.
 */
HotpathMetrics
runScalingWorkload(int mesh, int threads, double cs_scale)
{
    SystemConfig cfg;
    cfg.noc.meshWidth = mesh;
    cfg.noc.meshHeight = mesh;
    cfg.lockKind = LockKind::Tas;
    cfg.threads = threads;
    cfg.finalize();

    System system(cfg);

    Workload::Params wp;
    wp.profile = busySpinProfile();
    wp.threads = cfg.numCores();
    wp.csScale = cs_scale;
    wp.lockKind = cfg.lockKind;
    wp.seed = cfg.seed;
    Workload workload(wp, system.coherent(), system.locks(),
                      system.sim());

    const double t0 = wallNowNs();
    workload.start();
    system.runUntil([&] { return workload.done(); });
    const double t1 = wallNowNs();

    HotpathMetrics m;
    m.simCycles = system.sim().now();
    m.roiCycles = workload.roiFinish();
    m.csCompleted = workload.csCompleted();
    m.cpuNs = t1 - t0; // wall ns for this struct's scaling use
    m.eventsExecuted = system.sim().events().executedTotal();
    return m;
}

/**
 * Thread-scaling curve: events/s and wall-clock speedup vs threads=1
 * on 8x8 and 16x16 meshes, threads in {1,2,4,8}, best-of-REPS each.
 * bit_identical records whether every simulated observable matched
 * the threads=1 run; hw_threads records the host's parallelism budget
 * (speedups are bounded by it -- on a 1-CPU host the curve measures
 * barrier overhead, not gain).
 */
std::string
buildParallelScalingJson()
{
    constexpr int REPS = 3;
    const int threadCounts[] = {1, 2, 4, 8};
    std::string json = "  \"parallel\": {\n";
    json += "    \"hw_threads\": " +
            std::to_string(std::thread::hardware_concurrency()) +
            ",\n";
    json += "    \"threads\": [1, 2, 4, 8],\n";
    bool firstMesh = true;
    for (int mesh : {8, 16}) {
        const double csScale = mesh == 16 ? 0.25 : 1.0;
        HotpathMetrics base;
        if (!firstMesh)
            json += ",\n";
        firstMesh = false;
        json += "    \"mesh_" + std::to_string(mesh) + "x" +
                std::to_string(mesh) + "\": {\n";
        bool firstRun = true;
        for (int t : threadCounts) {
            HotpathMetrics best;
            for (int r = 0; r < REPS; ++r) {
                HotpathMetrics m = runScalingWorkload(mesh, t, csScale);
                if (r == 0 || m.cpuNs < best.cpuNs)
                    best = m;
            }
            if (t == 1)
                base = best;
            const bool identical =
                best.simCycles == base.simCycles &&
                best.roiCycles == base.roiCycles &&
                best.csCompleted == base.csCompleted &&
                best.eventsExecuted == base.eventsExecuted;
            const double speedup =
                best.cpuNs > 0 ? base.cpuNs / best.cpuNs : 0;
            char buf[256];
            std::snprintf(
                buf, sizeof buf,
                "%s      \"threads_%d\": {\n"
                "        \"wall_ns\": %.0f,\n"
                "        \"events_per_sec\": %.0f,\n"
                "        \"speedup\": %.2f,\n"
                "        \"bit_identical\": %s\n"
                "      }",
                firstRun ? "" : ",\n", t, best.cpuNs,
                best.eventsPerSec(), speedup,
                identical ? "true" : "false");
            firstRun = false;
            json += buf;
        }
        json += "\n    }";
    }
    json += "\n  }\n";
    return json;
}

/**
 * One busy-spin run on an arbitrary fabric (`topology=` spec string)
 * for the fabric-comparison section. Same workload class as the
 * hotpath A/B.
 */
HotpathMetrics
runFabricWorkload(const char *spec_text, int threads)
{
    SystemConfig cfg;
    TopologySpec::parse(spec_text).applyTo(cfg.noc);
    cfg.lockKind = LockKind::Tas;
    cfg.threads = threads;
    cfg.finalize();

    System system(cfg);

    Workload::Params wp;
    wp.profile = busySpinProfile();
    wp.threads = cfg.numCores();
    wp.csScale = 1.0;
    wp.lockKind = cfg.lockKind;
    wp.seed = cfg.seed;
    Workload workload(wp, system.coherent(), system.locks(),
                      system.sim());

    const double t0 = wallNowNs();
    workload.start();
    system.runUntil([&] { return workload.done(); });
    const double t1 = wallNowNs();

    HotpathMetrics m;
    m.simCycles = system.sim().now();
    m.roiCycles = workload.roiFinish();
    m.csCompleted = workload.csCompleted();
    m.cpuNs = t1 - t0; // wall ns, comparable with the parallel section
    m.eventsExecuted = system.sim().events().executedTotal();
    return m;
}

/**
 * Fabric comparison at equal core count (64): the paper's 8x8 mesh
 * baseline vs the torus (wrap links shorten average hop distance but
 * route through dateline escape VCs) vs the concentrated mesh
 * (cmesh:4x4x4 -- 16 routers, 4 cores each, NI fan-in). Each point is
 * best-of-REPS serial wall time; bit_identical_threads2 records
 * whether a threads=2 run of the same config matched every simulated
 * observable (the DESIGN.md Section 12 cross-fabric identity claim,
 * re-checked at bench time).
 */
std::string
buildTopologyJson()
{
    constexpr int REPS = 3;
    const char *fabrics[] = {"mesh:8x8", "torus:8x8", "cmesh:4x4x4"};
    std::string json = "  \"topology\": {\n";
    bool first = true;
    for (const char *fabric : fabrics) {
        HotpathMetrics best;
        for (int r = 0; r < REPS; ++r) {
            HotpathMetrics m = runFabricWorkload(fabric, 1);
            if (r == 0 || m.cpuNs < best.cpuNs)
                best = m;
        }
        const HotpathMetrics par = runFabricWorkload(fabric, 2);
        const bool identical =
            par.simCycles == best.simCycles &&
            par.roiCycles == best.roiCycles &&
            par.csCompleted == best.csCompleted &&
            par.eventsExecuted == best.eventsExecuted;
        char buf[320];
        std::snprintf(
            buf, sizeof buf,
            "%s    \"%s\": {\n"
            "      \"wall_ns\": %.0f,\n"
            "      \"events_per_sec\": %.0f,\n"
            "      \"sim_cycles\": %llu,\n"
            "      \"roi_cycles\": %llu,\n"
            "      \"cs_completed\": %llu,\n"
            "      \"bit_identical_threads2\": %s\n"
            "    }",
            first ? "" : ",\n", fabric, best.cpuNs,
            best.eventsPerSec(),
            static_cast<unsigned long long>(best.simCycles),
            static_cast<unsigned long long>(best.roiCycles),
            static_cast<unsigned long long>(best.csCompleted),
            identical ? "true" : "false");
        first = false;
        json += buf;
    }
    json += "\n  },\n";
    return json;
}

void
printHotpathJson(std::FILE *out, const HotpathMetrics &ref,
                 const HotpathMetrics &opt,
                 const Simulator::HostPhaseProfile &phases,
                 const Simulator::HostPhaseProfile &phases8x8,
                 const std::string &topology_json,
                 const std::string &parallel_json)
{
    auto emitRun = [out](const char *label, const HotpathMetrics &m) {
        std::fprintf(out,
                     "    \"%s\": {\n"
                     "      \"sim_cycles\": %llu,\n"
                     "      \"roi_cycles\": %llu,\n"
                     "      \"cs_completed\": %llu,\n"
                     "      \"cycles_fast_forwarded\": %llu,\n"
                     "      \"cpu_ns\": %.0f,\n"
                     "      \"events_scheduled\": %llu,\n"
                     "      \"events_executed\": %llu,\n"
                     "      \"events_per_sec\": %.0f,\n"
                     "      \"schedule_heap_allocs\": %llu\n"
                     "    }",
                     label,
                     static_cast<unsigned long long>(m.simCycles),
                     static_cast<unsigned long long>(m.roiCycles),
                     static_cast<unsigned long long>(m.csCompleted),
                     static_cast<unsigned long long>(m.ffCycles),
                     m.cpuNs,
                     static_cast<unsigned long long>(m.eventsScheduled),
                     static_cast<unsigned long long>(m.eventsExecuted),
                     m.eventsPerSec(),
                     static_cast<unsigned long long>(
                         m.scheduleHeapAllocs));
    };

    const bool identical = ref.simCycles == opt.simCycles &&
                           ref.roiCycles == opt.roiCycles &&
                           ref.csCompleted == opt.csCompleted;
    const double speedup = opt.cpuNs > 0 ? ref.cpuNs / opt.cpuNs : 0;
    auto emitSplit = [out](const char *label,
                           const Simulator::HostPhaseProfile &p,
                           const char *trailer) {
        const double total = p.eventsSec + p.routersSec + p.nisSec +
                             p.dirsSec + p.otherSec;
        auto frac = [total](double s) {
            return total > 0 ? s / total : 0;
        };
        std::fprintf(out,
                     "  \"%s\": {\n"
                     "    \"events\": %.4f,\n"
                     "    \"routers\": %.4f,\n"
                     "    \"nis\": %.4f,\n"
                     "    \"dirs\": %.4f,\n"
                     "    \"other\": %.4f,\n"
                     "    \"profiled_cycles\": %llu\n"
                     "  }%s\n",
                     label, frac(p.eventsSec), frac(p.routersSec),
                     frac(p.nisSec), frac(p.dirsSec), frac(p.otherSec),
                     static_cast<unsigned long long>(p.profiledCycles),
                     trailer);
    };

    std::fprintf(out, "{\n"
                      "  \"bench\": \"hotpath\",\n");
    emitMeta(out, "mesh=4x4 lock=tas cs_scale=1.0 seed=1 reps=3");
    std::fprintf(out, "  \"workload\": \"busy_spin_contention\",\n"
                      "  \"mesh\": \"4x4\",\n"
                      "  \"lock\": \"tas\",\n"
                      "  \"runs\": {\n");
    emitRun("reference", ref);
    std::fprintf(out, ",\n");
    emitRun("optimized", opt);
    std::fprintf(out,
                 "\n  },\n"
                 "  \"speedup\": %.2f,\n"
                 "  \"bit_identical\": %s,\n",
                 speedup, identical ? "true" : "false");
    emitSplit("phase_split_optimized", phases, ",");
    emitSplit("phase_split_optimized_8x8", phases8x8, ",");
    std::fputs(topology_json.c_str(), out);
    std::fputs(parallel_json.c_str(), out);
    std::fprintf(out, "}\n");
}

int
runHotpathMode(const char *out_path)
{
    // Interleave repetitions and keep the best (minimum) wall time per
    // flavor: host scheduling noise only ever slows a run down.
    constexpr int REPS = 3;
    HotpathMetrics ref, opt;
    for (int r = 0; r < REPS; ++r) {
        HotpathMetrics a = runHotpathWorkload(false, nullptr);
        HotpathMetrics b = runHotpathWorkload(true, nullptr);
        if (r == 0 || a.cpuNs < ref.cpuNs)
            ref = a;
        if (r == 0 || b.cpuNs < opt.cpuNs)
            opt = b;
    }
    // Separate profiled passes (clock reads around every tick distort
    // absolute time, so they are excluded from the A/B numbers). The
    // 8x8 pass shows how the split shifts with mesh radix.
    Simulator::HostPhaseProfile phases;
    runHotpathWorkload(true, &phases);
    Simulator::HostPhaseProfile phases8x8;
    runHotpathWorkload(true, &phases8x8, 8);

    const std::string topology = buildTopologyJson();
    const std::string parallel = buildParallelScalingJson();

    printHotpathJson(stdout, ref, opt, phases, phases8x8, topology,
                     parallel);
    if (out_path) {
        std::FILE *f = std::fopen(out_path, "w");
        if (!f) {
            std::fprintf(stderr, "cannot write %s\n", out_path);
            return 1;
        }
        printHotpathJson(f, ref, opt, phases, phases8x8, topology,
                         parallel);
        std::fclose(f);
    }

    int rc = 0;
    if (!(ref.simCycles == opt.simCycles &&
          ref.roiCycles == opt.roiCycles &&
          ref.csCompleted == opt.csCompleted)) {
        std::fprintf(
            stderr,
            "FAIL: optimized hot path changed simulated results\n");
        rc = 1;
    }
    if (opt.scheduleHeapAllocs != 0) {
        std::fprintf(stderr,
                     "FAIL: %llu heap allocations on the optimized "
                     "schedule path (expected 0)\n",
                     static_cast<unsigned long long>(
                         opt.scheduleHeapAllocs));
        rc = 1;
    }
    return rc;
}

int
runJsonMode(const char *out_path)
{
    // FF-off first, then FF-on with fresh pool statistics so the hit
    // rate reflects one run (the free list itself stays warm, as in any
    // long-lived process).
    KernelRunMetrics off = runKernelWorkload(false);
    FlitPool::local().resetStats();
    KernelRunMetrics on = runKernelWorkload(true);

    printKernelJson(stdout, off, on, FlitPool::local());
    if (out_path) {
        std::FILE *f = std::fopen(out_path, "w");
        if (!f) {
            std::fprintf(stderr, "cannot write %s\n", out_path);
            return 1;
        }
        printKernelJson(f, off, on, FlitPool::local());
        std::fclose(f);
    }

    if (!(off.roiCycles == on.roiCycles &&
          off.csCompleted == on.csCompleted)) {
        std::fprintf(stderr,
                     "FAIL: fast-forward changed simulated results\n");
        return 1;
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    bool json = false;
    const char *out_path = nullptr;
    const char *hotpath_path = nullptr;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--json") == 0)
            json = true;
        else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc)
            out_path = argv[++i];
        else if (std::strcmp(argv[i], "--hotpath-out") == 0 &&
                 i + 1 < argc)
            hotpath_path = argv[++i];
    }
    if (json) {
        int rc = runJsonMode(out_path);
        rc |= runHotpathMode(hotpath_path);
        return rc;
    }

    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
