/**
 * @file
 * Micro-benchmarks (google-benchmark) of the simulator's hot
 * components: router pipeline throughput, barrier table operations,
 * directory processing, arbiters and the event queue. These bound the
 * wall-clock cost of the figure-level benches.
 *
 * `bench_micro --json [--out FILE]` instead runs the kernel
 * fast-forward A/B measurement: one long-CS lock-contention workload
 * executed with idle fast-forwarding off and on, reporting host metrics
 * (wall-clock per simulated cycle, cycles fast-forwarded, flit-pool hit
 * rate) as JSON. The `perf-smoke` ctest target drives this mode.
 */

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>

#include "coh/coherent_system.hh"
#include "common/histogram.hh"
#include "common/rng.hh"
#include "harness/system.hh"
#include "inpg/lock_barrier_table.hh"
#include "noc/arbiter.hh"
#include "noc/flit_pool.hh"
#include "noc/network.hh"
#include "sim/simulator.hh"
#include "workload/benchmark_profile.hh"
#include "workload/workload.hh"

using namespace inpg;

static void
BM_RouterIdleTick(benchmark::State &state)
{
    NocConfig cfg;
    cfg.meshWidth = 8;
    cfg.meshHeight = 8;
    Simulator sim;
    Network net(cfg, sim);
    for (auto _ : state)
        sim.step();
    state.SetItemsProcessed(state.iterations() *
                            static_cast<std::int64_t>(cfg.numNodes()));
}
BENCHMARK(BM_RouterIdleTick);

static void
BM_NetworkUniformTraffic(benchmark::State &state)
{
    NocConfig cfg;
    cfg.meshWidth = 8;
    cfg.meshHeight = 8;
    Simulator sim;
    Network net(cfg, sim);
    for (NodeId n = 0; n < net.numNodes(); ++n)
        net.ni(n).setDeliverCallback([](const PacketPtr &, Cycle) {});
    Rng rng(7);
    for (auto _ : state) {
        // One random single-flit packet injected per cycle.
        NodeId s = static_cast<NodeId>(rng.nextBounded(64));
        NodeId d = static_cast<NodeId>(rng.nextBounded(64));
        net.inject(net.makePacket(s, d, 0, 1), sim.now());
        sim.step();
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_NetworkUniformTraffic);

static void
BM_CoherentSystemTick(benchmark::State &state)
{
    NocConfig noc;
    noc.meshWidth = 8;
    noc.meshHeight = 8;
    CohConfig coh;
    Simulator sim;
    CoherentSystem sys(noc, coh, sim);
    // Sustained load/stores from 8 cores.
    for (CoreId c = 0; c < 8; ++c) {
        auto loop = std::make_shared<std::function<void()>>();
        Addr a = coh.lineHomedAt(c * 7 % 64);
        *loop = [&sys, a, c, loop] {
            sys.l1(c).issueStore(a, 1, false,
                                 [loop](std::uint64_t) { (*loop)(); });
        };
        (*loop)();
    }
    for (auto _ : state)
        sim.step();
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CoherentSystemTick);

static void
BM_BarrierTableLookup(benchmark::State &state)
{
    LockBarrierTable table(16, 16, 128);
    for (int i = 0; i < 16; ++i)
        table.createBarrier(static_cast<Addr>(i) * 128, 0);
    Cycle now = 1;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            table.hasBarrier(static_cast<Addr>(now % 20) * 128, 0));
        ++now;
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BarrierTableLookup);

static void
BM_BarrierEiLifecycle(benchmark::State &state)
{
    LockBarrierTable table(16, 16, 1u << 30);
    table.createBarrier(0x100, 0);
    Cycle now = 1;
    for (auto _ : state) {
        table.addEi(0x100, static_cast<CoreId>(now % 16), now);
        table.completeEi(0x100, static_cast<CoreId>(now % 16), now);
        ++now;
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BarrierEiLifecycle);

static void
BM_PriorityArbiter(benchmark::State &state)
{
    PriorityArbiter arb(8, 64);
    std::vector<PriorityArbiter::Request> reqs(8);
    Rng rng(3);
    for (auto &r : reqs) {
        r.valid = rng.chance(0.5);
        r.priority = static_cast<int>(rng.nextBounded(9));
    }
    for (auto _ : state)
        benchmark::DoNotOptimize(arb.grant(reqs));
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PriorityArbiter);

static void
BM_EventQueue(benchmark::State &state)
{
    EventQueue q;
    Cycle now = 0;
    int sink = 0;
    for (auto _ : state) {
        q.schedule(now + 5, [&sink] { ++sink; });
        q.runDue(now);
        ++now;
    }
    benchmark::DoNotOptimize(sink);
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EventQueue);

static void
BM_HistogramAdd(benchmark::State &state)
{
    Histogram h(5, 40);
    Rng rng(11);
    for (auto _ : state)
        h.add(rng.nextBounded(250));
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HistogramAdd);

// ---------------------------------------------------------------------
// --json mode: kernel fast-forward A/B on a long-CS contention workload
// ---------------------------------------------------------------------

namespace {

struct KernelRunMetrics {
    Cycle simCycles = 0;
    Cycle roiCycles = 0;
    std::uint64_t csCompleted = 0;
    std::uint64_t ffCycles = 0;
    std::uint64_t ffJumps = 0;
    double wallNs = 0;

    double
    nsPerCycle() const
    {
        return simCycles ? wallNs / static_cast<double>(simCycles) : 0;
    }
};

/**
 * 16 QSL threads contending on one lock with long CS bodies: while the
 * holder executes its critical section every waiter sleeps, so the
 * fabric goes fully idle between protocol bursts -- the workload class
 * the fast-forward kernel targets.
 */
BenchmarkProfile
longCsProfile()
{
    BenchmarkProfile p = benchmarkByName("imag");
    p.name = "long_cs_contention";
    p.totalCs = 256;
    p.avgCsCycles = 3000;
    p.avgParallelCycles = 1500;
    p.numLocks = 1;
    p.memGapCycles = 0; // no background traffic: pure lock contention
    return p;
}

KernelRunMetrics
runKernelWorkload(bool fast_forward)
{
    SystemConfig cfg;
    cfg.noc.meshWidth = 4;
    cfg.noc.meshHeight = 4;
    cfg.lockKind = LockKind::Qsl;
    cfg.finalize();

    System system(cfg);
    system.sim().setFastForward(fast_forward);

    Workload::Params wp;
    wp.profile = longCsProfile();
    wp.threads = cfg.numCores();
    wp.csScale = 1.0;
    wp.lockKind = cfg.lockKind;
    wp.seed = cfg.seed;
    Workload workload(wp, system.coherent(), system.locks(),
                      system.sim());

    const auto t0 = std::chrono::steady_clock::now();
    workload.start();
    system.runUntil([&] { return workload.done(); });
    const auto t1 = std::chrono::steady_clock::now();

    KernelRunMetrics m;
    m.simCycles = system.sim().now();
    m.roiCycles = workload.roiFinish();
    m.csCompleted = workload.csCompleted();
    m.ffCycles = system.sim().cyclesFastForwarded();
    m.ffJumps = system.sim().fastForwardJumps();
    m.wallNs = static_cast<double>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
            .count());
    return m;
}

void
printKernelJson(std::FILE *out, const KernelRunMetrics &off,
                const KernelRunMetrics &on, const FlitPool &pool)
{
    auto emitRun = [out](const char *label, const KernelRunMetrics &m) {
        std::fprintf(out,
                     "    \"%s\": {\n"
                     "      \"sim_cycles\": %llu,\n"
                     "      \"roi_cycles\": %llu,\n"
                     "      \"cs_completed\": %llu,\n"
                     "      \"wall_ns\": %.0f,\n"
                     "      \"ns_per_sim_cycle\": %.3f,\n"
                     "      \"cycles_fast_forwarded\": %llu,\n"
                     "      \"fast_forward_jumps\": %llu\n"
                     "    }",
                     label,
                     static_cast<unsigned long long>(m.simCycles),
                     static_cast<unsigned long long>(m.roiCycles),
                     static_cast<unsigned long long>(m.csCompleted),
                     m.wallNs, m.nsPerCycle(),
                     static_cast<unsigned long long>(m.ffCycles),
                     static_cast<unsigned long long>(m.ffJumps));
    };

    const bool identical = off.roiCycles == on.roiCycles &&
                           off.csCompleted == on.csCompleted &&
                           off.simCycles == on.simCycles;
    const double speedup = on.wallNs > 0 ? off.wallNs / on.wallNs : 0;

    std::fprintf(out, "{\n"
                      "  \"bench\": \"kernel_fast_forward\",\n"
                      "  \"workload\": \"long_cs_contention\",\n"
                      "  \"mesh\": \"4x4\",\n"
                      "  \"lock\": \"qsl\",\n"
                      "  \"runs\": {\n");
    emitRun("fast_forward_off", off);
    std::fprintf(out, ",\n");
    emitRun("fast_forward_on", on);
    std::fprintf(out,
                 "\n  },\n"
                 "  \"speedup\": %.2f,\n"
                 "  \"bit_identical\": %s,\n"
                 "  \"flit_pool\": {\n"
                 "    \"allocated\": %llu,\n"
                 "    \"reused\": %llu,\n"
                 "    \"hit_rate\": %.4f\n"
                 "  }\n"
                 "}\n",
                 speedup, identical ? "true" : "false",
                 static_cast<unsigned long long>(pool.allocated()),
                 static_cast<unsigned long long>(pool.reused()),
                 pool.hitRate());
}

int
runJsonMode(const char *out_path)
{
    // FF-off first, then FF-on with fresh pool statistics so the hit
    // rate reflects one run (the free list itself stays warm, as in any
    // long-lived process).
    KernelRunMetrics off = runKernelWorkload(false);
    FlitPool::local().resetStats();
    KernelRunMetrics on = runKernelWorkload(true);

    printKernelJson(stdout, off, on, FlitPool::local());
    if (out_path) {
        std::FILE *f = std::fopen(out_path, "w");
        if (!f) {
            std::fprintf(stderr, "cannot write %s\n", out_path);
            return 1;
        }
        printKernelJson(f, off, on, FlitPool::local());
        std::fclose(f);
    }

    if (!(off.roiCycles == on.roiCycles &&
          off.csCompleted == on.csCompleted)) {
        std::fprintf(stderr,
                     "FAIL: fast-forward changed simulated results\n");
        return 1;
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    bool json = false;
    const char *out_path = nullptr;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--json") == 0)
            json = true;
        else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc)
            out_path = argv[++i];
    }
    if (json)
        return runJsonMode(out_path);

    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
