/**
 * @file
 * Figure 9 -- execution timing profile of freqmine under the four
 * mechanisms: the share of parallel / COH / CSE cycles and the number
 * of critical sections completed in a 30,000-cycle window of the first
 * 8 threads, plus an ASCII timeline strip per thread.
 */

#include <algorithm>

#include "bench_util.hh"
#include "harness/system.hh"
#include "workload/workload.hh"

using namespace inpg;

namespace {

constexpr Cycle WINDOW = 30000;
/** Observation starts after a warmup of the same length: the paper's
 *  profile is of steady-state execution, not the cold-start pileup. */
constexpr Cycle WARMUP = 30000;
constexpr int THREADS_SHOWN = 8;

char
phaseGlyph(ThreadPhase p)
{
    switch (p) {
      case ThreadPhase::Parallel:
        return '.';
      case ThreadPhase::Coh:
        return 'c';
      case ThreadPhase::Sleep:
        return 'z';
      case ThreadPhase::Cse:
        return '#';
      case ThreadPhase::Done:
        return ' ';
    }
    return '?';
}

} // namespace

int
main(int argc, char **argv)
{
    BenchOptions opts = BenchOptions::parse(argc, argv);
    std::printf("=== Figure 9: freqmine timing profile, first %d "
                "threads, %llu-cycle window ===\n\n",
                THREADS_SHOWN, static_cast<unsigned long long>(WINDOW));

    TablePrinter t("phase shares in the window + CS completed");
    t.header({"mechanism", "parallel", "COH", "sleep", "CSE",
              "CS completed", "vs Original"});

    double base_cs = 0;
    for (Mechanism m : ALL_MECHANISMS) {
        SystemConfig sc = opts.systemConfig();
        sc.mechanism = m;
        sc.finalize();
        System system(sc);
        Workload::Params wp;
        wp.profile = benchmarkByName("freq");
        wp.threads = sc.numCores();
        wp.csScale = std::max(opts.csScale, 0.05);
        wp.lockKind = sc.lockKind;
        wp.seed = sc.seed;
        Workload w(wp, system.coherent(), system.locks(), system.sim());
        w.start();
        // Run to the end of the observation window (workload sized so
        // it cannot finish earlier).
        system.runUntil([&] {
            return system.sim().now() >= WARMUP + WINDOW || w.done();
        });

        Cycle phase_cycles[NUM_THREAD_PHASES] = {};
        int cs_entries = 0;
        for (int th = 0; th < THREADS_SHOWN; ++th) {
            const PhaseRecorder &rec = w.threads()[th]->recorder();
            for (const auto &ev : rec.timeline())
                if (ev.at >= WARMUP && ev.at < WARMUP + WINDOW &&
                    ev.phase == ThreadPhase::Cse)
                    ++cs_entries;
            // Integrate the timeline over the window.
            const auto &tl = rec.timeline();
            for (std::size_t i = 0; i < tl.size(); ++i) {
                Cycle start = std::max(tl[i].at, WARMUP);
                Cycle end = i + 1 < tl.size() ? tl[i + 1].at
                                              : WARMUP + WINDOW;
                start = std::min(start, WARMUP + WINDOW);
                end = std::clamp(end, start, WARMUP + WINDOW);
                phase_cycles[static_cast<int>(tl[i].phase)] +=
                    end - start;
            }
        }
        double total = static_cast<double>(WINDOW) * THREADS_SHOWN;
        if (m == Mechanism::Original)
            base_cs = cs_entries;
        t.row({mechanismName(m),
               pct(phase_cycles[0] / total),
               pct((phase_cycles[1] + phase_cycles[2]) / total),
               pct(phase_cycles[2] / total),
               pct(phase_cycles[3] / total),
               std::to_string(cs_entries),
               base_cs > 0
                   ? (cs_entries >= base_cs ? "+" : "-") +
                         pct(std::abs(cs_entries / base_cs - 1.0))
                   : "-"});

        // ASCII strip per thread: 100 buckets of 300 cycles.
        std::printf("--- %s ---\n", mechanismName(m));
        for (int th = 0; th < THREADS_SHOWN; ++th) {
            const PhaseRecorder &rec = w.threads()[th]->recorder();
            std::string strip;
            for (int b = 0; b < 100; ++b)
                strip += phaseGlyph(rec.phaseAt(
                    WARMUP + static_cast<Cycle>(b) * (WINDOW / 100)));
            std::printf("  t%d %s\n", th, strip.c_str());
        }
        std::printf("\n");
    }
    std::printf("%s\n", t.render().c_str());
    std::printf("Legend: '.' parallel  'c' competition  'z' sleep  '#' "
                "critical section\n");
    std::printf("Paper reference: Original 62.1/28.3/9.6%%, 78 CS; OCOR "
                "69.8/19.8/10.4%%, 92 CS; iNPG 73.0/17.0/10.0%%, 96 CS; "
                "iNPG+OCOR 80.1/9.0/10.9%%, 104 CS.\n");
    return 0;
}
