/**
 * @file
 * Figure 10 -- coherence Inv-Ack round-trip delay, Original vs iNPG.
 *
 * Scenario (paper Sec. 5.2.3): all 64 threads compete for one lock
 * hosted at the shared L2 bank of tile (5,6); the measurement covers
 * the whole competition. Reports the per-core average round-trip as an
 * 8x8 grid (Figures 10a/10c) and the delay histogram (10b/10d).
 */

#include "bench_util.hh"
#include "harness/system.hh"
#include "workload/workload.hh"

using namespace inpg;

namespace {

/** All-64-compete microworkload (freqmine-like CS lengths). */
BenchmarkProfile
contendedProfile()
{
    BenchmarkProfile p = benchmarkByName("freq");
    p.avgParallelCycles = 200; // every thread is always competing
    p.numLocks = 1;
    return p;
}

} // namespace

int
main(int argc, char **argv)
{
    BenchOptions opts = BenchOptions::parse(argc, argv);
    SystemConfig base = opts.systemConfig();
    // Tile (x=5, y=6) on the 8x8 mesh.
    const NodeId home = base.noc.meshWidth * 6 + 5;

    std::printf("=== Figure 10: Inv-Ack round-trip delay, lock homed at "
                "tile (5,6) (node %d) ===\n\n", home);

    for (Mechanism m : {Mechanism::Original, Mechanism::Inpg}) {
        SystemConfig sc = base;
        sc.mechanism = m;
        sc.finalize();
        System system(sc);
        Workload::Params wp;
        wp.profile = contendedProfile();
        wp.threads = sc.numCores();
        wp.csScale = std::max(opts.csScale, 0.03);
        wp.lockHome = home;
        wp.lockKind = sc.lockKind;
        Workload w(wp, system.coherent(), system.locks(), system.sim());
        w.start();
        system.runUntil([&] { return w.done(); });

        const CohStats &cs = system.coherent().cohStats();
        std::printf("--- %s: per-core mean Inv-Ack round trip (cycles) "
                    "---\n", mechanismName(m));
        for (int y = 0; y < sc.noc.meshHeight; ++y) {
            std::printf("  ");
            for (int x = 0; x < sc.noc.meshWidth; ++x) {
                const SampleStat &s = cs.rttPerCore[static_cast<
                    std::size_t>(y * sc.noc.meshWidth + x)];
                std::printf("%6.1f", s.mean());
            }
            std::printf("\n");
        }
        std::printf("\n  mean %.1f  max %llu  p95 %llu  samples %llu "
                    "(early %llu, home %llu)\n",
                    cs.rttHistogram.mean(),
                    static_cast<unsigned long long>(cs.rttHistogram.max()),
                    static_cast<unsigned long long>(
                        cs.rttHistogram.percentile(0.95)),
                    static_cast<unsigned long long>(
                        cs.rttHistogram.count()),
                    static_cast<unsigned long long>(cs.rttEarly.count()),
                    static_cast<unsigned long long>(cs.rttHome.count()));
        std::printf("\n--- %s: round-trip histogram ---\n%s\n",
                    mechanismName(m),
                    cs.rttHistogram.render().c_str());
    }
    std::printf("Paper reference: Original avg 39.2 / max 97 cycles with "
                "a long tail; iNPG avg 9.5 / max 15 cycles, tail "
                "eliminated, and the dependence of the delay on the "
                "distance to the home node disappears.\n");
    return 0;
}
