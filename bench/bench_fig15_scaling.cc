/**
 * @file
 * Figure 15 -- sensitivity to NoC dimension (2x2 .. 16x16) and locking
 * barrier table size (4 / 16 / 64 entries): average ROI reduction of
 * iNPG over Original (paper: 4.7% at 2x2, 19.9% at 8x8, 57.5% at
 * 16x16; small tables throttle iNPG only on large meshes; >16 entries
 * add little).
 */

#include "bench_util.hh"

using namespace inpg;

int
main(int argc, char **argv)
{
    BenchOptions opts = BenchOptions::parse(argc, argv);
    std::printf("=== Figure 15: iNPG ROI reduction vs NoC dimension x "
                "barrier table size ===\n\n");

    struct Dim {
        int w;
        int h;
    };
    // The paper sweeps 2x2, 4x4, 8x8, 10x10 and 16x16.
    std::vector<Dim> dims = opts.quick
        ? std::vector<Dim>{{4, 4}, {8, 8}}
        : std::vector<Dim>{{2, 2}, {4, 4}, {8, 8}, {10, 10}, {16, 16}};
    const std::size_t tables[] = {4, 16, 64};
    // Representative mix (one per group) -- a full 16x16 sweep over all
    // 24 programs would take hours.
    const char *programs[] = {"md", "freq", "kdtree"};

    TablePrinter t("average ROI reduction of iNPG vs Original");
    t.header({"mesh", "4 entries", "16 entries", "64 entries"});

    for (const Dim &d : dims) {
        std::vector<std::string> cells{
            std::to_string(d.w) + "x" + std::to_string(d.h)};
        for (std::size_t entries : tables) {
            double sum = 0;
            int n = 0;
            for (const char *name : programs) {
                const BenchmarkProfile &p = benchmarkByName(name);
                SystemConfig sc = opts.systemConfig();
                sc.noc.meshWidth = d.w;
                sc.noc.meshHeight = d.h;
                sc.inpg.numBigRouters = d.w * d.h / 2;
                sc.inpg.barrierEntries = entries;
                sc.inpg.eiEntries = entries;
                AveragedResult base =
                    runPoint(p, sc, Mechanism::Original, opts);
                AveragedResult inpg =
                    runPoint(p, sc, Mechanism::Inpg, opts);
                sum += 1.0 - inpg.roiCycles / base.roiCycles;
                ++n;
            }
            cells.push_back(pct(sum / n));
        }
        t.row(cells);
    }
    std::printf("%s\n", t.render().c_str());
    std::printf("Paper reference (16-entry column): 2x2 4.7%%, 8x8 "
                "19.9%%, 16x16 57.5%%. Small tables only hurt on large "
                "meshes; growing past 16 entries adds little.\n");
    return 0;
}
