/**
 * @file
 * Figure 13 -- iNPG's ROI finish-time reduction under the five locking
 * primitives (paper averages: TAS 52.8%, TTL 33.4%, ABQL 32.6%, QSL
 * 19.9%, MCS 16.5% -- the more lock-competition traffic a primitive
 * generates, the more iNPG helps).
 */

#include "bench_util.hh"

using namespace inpg;

int
main(int argc, char **argv)
{
    BenchOptions opts = BenchOptions::parse(argc, argv);
    std::printf("=== Figure 13: iNPG ROI reduction per locking "
                "primitive ===\n\n");

    const LockKind kinds[] = {LockKind::Tas, LockKind::Ticket,
                              LockKind::Abql, LockKind::Qsl,
                              LockKind::Mcs};

    TablePrinter t("ROI finish time with iNPG relative to Original");
    t.header({"program", "TAS", "TTL", "ABQL", "QSL", "MCS"});

    double sums[5] = {};
    int n = 0;
    for (const auto &p : opts.benchmarks()) {
        std::vector<std::string> cells{p.fullName};
        for (int i = 0; i < 5; ++i) {
            SystemConfig sc = opts.systemConfig();
            sc.lockKind = kinds[i];
            AveragedResult base =
                runPoint(p, sc, Mechanism::Original, opts);
            AveragedResult inpg =
                runPoint(p, sc, Mechanism::Inpg, opts);
            double rel = inpg.roiCycles / base.roiCycles;
            sums[i] += rel;
            cells.push_back(pct(rel));
        }
        ++n;
        t.row(cells);
    }
    t.separator();
    std::vector<std::string> avg{"AVG (reduction)"};
    for (int i = 0; i < 5; ++i) {
        double red = 1.0 - sums[i] / n;
        avg.push_back((red >= 0 ? "-" : "+") +
                      pct(red >= 0 ? red : -red));
    }
    t.row(avg);
    std::printf("%s\n", t.render().c_str());
    std::printf("Paper reference reductions: TAS 52.8%%, TTL 33.4%%, "
                "ABQL 32.6%%, QSL 19.9%%, MCS 16.5%%.\n");
    return 0;
}
